package relation

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
)

// This file implements the relation half of the warm-restart snapshot
// codec: a versioned, endianness-stable binary encoding of a Relation's
// dictionary-encoded columns. A server restart decodes the snapshot
// instead of re-parsing (and re-dictionary-encoding) the source CSV; the
// companion universe codec in internal/explain then skips the group-by
// and planning passes entirely. All multi-byte values are little-endian
// regardless of host byte order, so a snapshot written on one machine
// loads on any other.

// relSnapMagic identifies a relation snapshot section; the trailing byte
// is the format version. Readers reject unknown versions rather than
// guessing, so a format change never silently mis-decodes old files —
// callers fall back to rebuilding from the source data.
const (
	relSnapMagic = "TSXR"
	// relSnapVersion1 is the original fixed-width layout; relSnapVersion2
	// is the compact layout (varint lengths and id columns, delta-coded
	// time indexes, integral measure columns as zigzag varints);
	// relSnapVersion3 is v2 plus a trailing metadata section carrying
	// declared hierarchies and derived-column records (path levels, frozen
	// range-bin edges). Writers emit v3 only when that metadata exists —
	// a metadata-free relation still encodes byte-identically to v2 — and
	// readers accept all three so existing snapshot files keep restoring.
	relSnapVersion1 = 1
	relSnapVersion2 = 2
	relSnapVersion3 = 3
)

// snapMaxLen caps every decoded length field (strings, row counts, column
// counts). A corrupted or adversarial length then fails decoding with an
// error instead of attempting a multi-gigabyte allocation. The cap is an
// untyped constant deliberately one below 1<<31: decoded lengths are
// compared against it in 64-bit space and then narrowed to int, and a
// value of exactly 1<<31 would survive a `>` guard against 1<<31 yet
// overflow to a negative int on 32-bit platforms (GOARCH=386/arm), where
// make() would panic instead of failing cleanly.
const snapMaxLen = 1<<31 - 1

// SnapWriter wraps a buffered writer with the little-endian primitives
// both snapshot codecs (relation here, universe in internal/explain)
// share. The first write error sticks; later writes are no-ops, so
// encoders can write unconditionally and check once at the end.
type SnapWriter struct {
	w    *bufio.Writer
	err  error
	off  int64 // bytes successfully written so far
	base int64 // absolute offset of byte 0 in the final file (SetAbsBase)
}

// NewSnapWriter returns a snapshot writer over w. It is exported for the
// universe codec in internal/explain, which appends its section to the
// same stream; application code uses WriteSnapshot instead.
func NewSnapWriter(w io.Writer) *SnapWriter { return &SnapWriter{w: bufio.NewWriter(w)} }

func (sw *SnapWriter) bytes(b []byte) {
	if sw.err != nil {
		return
	}
	if _, sw.err = sw.w.Write(b); sw.err == nil {
		sw.off += int64(len(b))
	}
}

// Offset returns the number of bytes written so far.
func (sw *SnapWriter) Offset() int64 { return sw.off }

// SetAbsBase records the absolute file offset at which this writer's
// byte 0 will land (the container header length). Align16 uses it so
// alignment padding is computed against the final on-disk position —
// what a page-aligned mmap of the whole file actually sees — rather
// than the payload-relative one.
func (sw *SnapWriter) SetAbsBase(n int64) { sw.base = n }

// zeroPad backs alignment padding writes.
var zeroPad [16]byte

// Align16 emits a one-byte pad length followed by that many zero bytes,
// chosen so the NEXT byte written lands on a 16-byte boundary of the
// final file (relative to SetAbsBase). The decoder skips it with
// SkipPad. 16-byte alignment makes a raw []SumCount arena in the file
// alias-able in place: SumCount is two float64s, and Go's checkptr mode
// requires the aliased pointer to be at least 8-aligned.
func (sw *SnapWriter) Align16() {
	pad := uint8((16 - (sw.base+sw.off+1)%16) % 16)
	sw.U8(pad)
	sw.bytes(zeroPad[:pad])
}

// U8, U32, U64, F64, Str, and Flush are the primitive little-endian
// emitters shared by the snapshot codecs.
func (sw *SnapWriter) U8(v uint8) { sw.bytes([]byte{v}) }

func (sw *SnapWriter) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	sw.bytes(b[:])
}

func (sw *SnapWriter) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	sw.bytes(b[:])
}

func (sw *SnapWriter) F64(v float64) { sw.U64(math.Float64bits(v)) }

func (sw *SnapWriter) Str(s string) {
	sw.U32(uint32(len(s)))
	sw.bytes([]byte(s))
}

// SumCounts bulk-encodes a decomposed-aggregate series as (sum, count)
// float64 pairs. The universe codec uses it for the candidate-series
// arena, where per-value calls would dominate decode time.
func (sw *SnapWriter) SumCounts(s []SumCount) {
	if sw.err != nil {
		return
	}
	var b [16]byte
	for i := range s {
		binary.LittleEndian.PutUint64(b[:8], math.Float64bits(s[i].Sum))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(s[i].Count))
		if _, sw.err = sw.w.Write(b[:]); sw.err != nil {
			return
		}
		sw.off += 16
	}
}

// Uvarint emits v in LEB128 variable-width encoding (1 byte for values
// < 128), the workhorse of the v2 codec's length and id fields.
func (sw *SnapWriter) Uvarint(v uint64) {
	if sw.err != nil {
		return
	}
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	sw.bytes(b[:n])
}

// Varint emits v zigzag-encoded so small magnitudes of either sign stay
// short; the v2 codec uses it for deltas and integral measure values.
func (sw *SnapWriter) Varint(v int64) {
	if sw.err != nil {
		return
	}
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	sw.bytes(b[:n])
}

// VStr emits a string with a uvarint length prefix (v2 framing).
func (sw *SnapWriter) VStr(s string) {
	sw.Uvarint(uint64(len(s)))
	sw.bytes([]byte(s))
}

// integralF64 reports whether v survives a round trip through int64
// exactly: an integer of magnitude ≤ 2^53 that is not negative zero (the
// int64 round trip would silently flip -0.0 to +0.0, breaking the codec's
// bit-identity contract).
func integralF64(v float64) bool {
	return v == math.Trunc(v) && v >= -(1<<53) && v <= 1<<53 &&
		!(v == 0 && math.Signbit(v))
}

// uvarintLen returns the encoded size of v in bytes.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// zigzag mirrors the transform binary.PutVarint applies.
func zigzag(v int64) uint64 { return uint64(v)<<1 ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// pow10tab backs the decimal float codec; decimalEscape in the exponent
// nibble marks a value that did not verify and is stored as raw bits.
var pow10tab = [15]float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14}

const decimalEscape = 15

// decimalF64 finds the smallest e with v == float64(m) / 10^e reproduced
// BIT-exactly (verified by re-dividing, so double rounding can never slip
// through). Data ingested from decimal text — CSV measures and their
// sums — almost always verifies with a short mantissa, turning an 8-byte
// float into a 2–4 byte varint.
func decimalF64(v float64) (m int64, e int, ok bool) {
	for e = 0; e < len(pow10tab); e++ {
		s := v * pow10tab[e]
		if s != math.Trunc(s) || s < -(1<<53) || s > 1<<53 {
			continue
		}
		m = int64(s)
		if math.Float64bits(float64(m)/pow10tab[e]) == math.Float64bits(v) {
			return m, e, true
		}
	}
	return 0, 0, false
}

// decimalF64Len returns DecimalF64's encoded size for v in bytes.
func decimalF64Len(v float64) int {
	if m, _, ok := decimalF64(v); ok {
		return uvarintLen(zigzag(m)<<4 | 1)
	}
	return 9
}

// DecimalF64 emits one float in the decimal-mantissa encoding: a single
// uvarint packing zigzag(mantissa)<<4 | exponent, or an escape nibble
// followed by the raw IEEE bits when no exact decimal form exists.
func (sw *SnapWriter) DecimalF64(v float64) {
	if m, e, ok := decimalF64(v); ok {
		sw.Uvarint(zigzag(m)<<4 | uint64(e))
		return
	}
	sw.Uvarint(decimalEscape)
	sw.F64(v)
}

// DecimalF64 decodes the counterpart of SnapWriter.DecimalF64.
func (sr *SnapReader) DecimalF64() float64 {
	u := sr.Uvarint()
	e := u & 15
	if e == decimalEscape {
		return sr.F64()
	}
	return float64(unzigzag(u>>4)) / pow10tab[e]
}

// F64Column encodes a float64 column under the cheapest of three layouts,
// all bit-exact: flag 1 zigzag varints when every value is integral, flag
// 2 decimal-mantissa varints (short CSV-style decimals, raw escapes for
// the rest), or flag 0 raw IEEE bits.
func (sw *SnapWriter) F64Column(vals []float64) {
	integral := true
	costInt, costDec := 0, 0
	for _, v := range vals {
		if integral && integralF64(v) {
			costInt += uvarintLen(zigzag(int64(v)))
		} else {
			integral = false
		}
		costDec += decimalF64Len(v)
	}
	costRaw := 8 * len(vals)
	switch {
	case integral && costInt <= costDec && costInt < costRaw:
		sw.U8(1)
		for _, v := range vals {
			sw.Varint(int64(v))
		}
	case costDec < costRaw:
		sw.U8(2)
		for _, v := range vals {
			sw.DecimalF64(v)
		}
	default:
		sw.U8(0)
		for _, v := range vals {
			sw.F64(v)
		}
	}
}

// Series layout tags for SumCountsV2: a dense raw fallback plus varint
// and sparse layouts. "Integral" layouts require every stored value to
// pass integralF64; "sparse" layouts store only entries whose Sum and
// Count are both exactly +0x0 bits (so -0.0 never masquerades as absent).
const (
	scDenseRaw        = 0 // T × (f64 sum, f64 count)
	scDenseIntegral   = 1 // T × (varint sum, uvarint count)
	scSparseIntegral  = 2 // nnz × (uvarint gap, varint sum, uvarint count)
	scSparseRawSum    = 3 // nnz × (uvarint gap, f64 sum, uvarint count)
	scSparseRaw       = 4 // nnz × (uvarint gap, f64 sum, f64 count)
	scSparseDecimal   = 5 // nnz × (uvarint gap, decimal sum, uvarint count)
	scMaxLayout       = scSparseDecimal
	scSparseOverheadB = 5 // uvarint nnz budgeted generously in cost math
)

// scZero reports a truly absent entry: both fields bit-equal to +0.0.
func scZero(s SumCount) bool {
	return math.Float64bits(s.Sum) == 0 && math.Float64bits(s.Count) == 0
}

// SumCountsV2 encodes a decomposed-aggregate series in the v2 layout that
// costs the fewest bytes while staying bit-exact: candidate slices are
// mostly zero (sparse layouts skip the zeros) and counts — often sums too
// — are small integers (varints shrink them). A one-byte layout tag keeps
// the decoder branch-free per series.
func (sw *SnapWriter) SumCountsV2(s []SumCount) {
	nnz := 0
	nzIntegral, cntIntegral := true, true
	denseIntegral := true
	var costDenseInt, costSparseInt, costSparseRawSum, costSparseDec int
	for i := range s {
		if scZero(s[i]) {
			costDenseInt += 2 // varint 0 + uvarint 0
			continue
		}
		nnz++
		sumInt := integralF64(s[i].Sum)
		countInt := integralF64(s[i].Count) && s[i].Count >= 0
		if !sumInt {
			nzIntegral, denseIntegral = false, false
		}
		if !countInt {
			cntIntegral, denseIntegral = false, false
			nzIntegral = false
		}
		if sumInt {
			sl := uvarintLen(zigzag(int64(s[i].Sum)))
			costDenseInt += sl
			costSparseInt += sl
		}
		costSparseDec += decimalF64Len(s[i].Sum)
		if countInt {
			cl := uvarintLen(uint64(s[i].Count))
			costDenseInt += cl
			costSparseInt += cl
			costSparseRawSum += cl
			costSparseDec += cl
		}
	}
	// Gap bytes: almost always 1 each; budget 2 to stay conservative.
	costSparseInt += scSparseOverheadB + 2*nnz
	costSparseRawSum += scSparseOverheadB + 2*nnz + 8*nnz
	costSparseDec += scSparseOverheadB + 2*nnz
	costSparseRaw := scSparseOverheadB + 2*nnz + 16*nnz
	costDenseRaw := 16 * len(s)

	layout := scDenseRaw
	best := costDenseRaw
	if denseIntegral && costDenseInt < best {
		layout, best = scDenseIntegral, costDenseInt
	}
	if nzIntegral && costSparseInt < best {
		layout, best = scSparseIntegral, costSparseInt
	}
	if cntIntegral && costSparseRawSum < best {
		layout, best = scSparseRawSum, costSparseRawSum
	}
	if cntIntegral && costSparseDec < best {
		layout, best = scSparseDecimal, costSparseDec
	}
	if costSparseRaw < best {
		layout = scSparseRaw
	}

	sw.U8(uint8(layout))
	switch layout {
	case scDenseRaw:
		sw.SumCounts(s)
	case scDenseIntegral:
		for i := range s {
			sw.Varint(int64(s[i].Sum))
			sw.Uvarint(uint64(s[i].Count))
		}
	default:
		sw.Uvarint(uint64(nnz))
		prev := -1
		for i := range s {
			if scZero(s[i]) {
				continue
			}
			sw.Uvarint(uint64(i - prev - 1))
			prev = i
			switch layout {
			case scSparseIntegral:
				sw.Varint(int64(s[i].Sum))
				sw.Uvarint(uint64(s[i].Count))
			case scSparseRawSum:
				sw.F64(s[i].Sum)
				sw.Uvarint(uint64(s[i].Count))
			case scSparseDecimal:
				sw.DecimalF64(s[i].Sum)
				sw.Uvarint(uint64(s[i].Count))
			default:
				sw.F64(s[i].Sum)
				sw.F64(s[i].Count)
			}
		}
	}
}

// Flush drains the buffer and reports the first error encountered.
func (sw *SnapWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// SnapReader is the decoding counterpart of SnapWriter: little-endian
// primitives over a buffered reader, with sticky errors and length
// sanity caps. When the whole payload is already in memory (the catalog
// restore path), NewSnapReaderBytes decodes straight off the slice —
// no bufio indirection, no per-varint ReadByte calls — which is what
// keeps warm restores fast now that v2 payloads are varint-dense.
type SnapReader struct {
	r       *bufio.Reader
	buf     []byte // non-nil → direct slice decoding via pos
	pos     int
	err     error
	scratch [8]byte // fixed-width reads decode through here, allocation-free
}

// NewSnapReader returns a snapshot reader over r, the counterpart of
// NewSnapWriter.
func NewSnapReader(r io.Reader) *SnapReader { return &SnapReader{r: bufio.NewReader(r)} }

// NewSnapReaderBytes returns a snapshot reader decoding directly from an
// in-memory payload.
func NewSnapReaderBytes(b []byte) *SnapReader { return &SnapReader{buf: b} }

func (sr *SnapReader) truncated() {
	sr.err = fmt.Errorf("relation: snapshot truncated: %w", io.ErrUnexpectedEOF)
}

func (sr *SnapReader) bytes(n int) []byte {
	if sr.err != nil {
		return nil
	}
	if sr.buf != nil {
		if n < 0 || len(sr.buf)-sr.pos < n {
			sr.truncated()
			return nil
		}
		b := sr.buf[sr.pos : sr.pos+n]
		sr.pos += n
		return b
	}
	b := sr.scratch[:]
	if n > len(sr.scratch) {
		b = make([]byte, n)
	} else {
		b = b[:n]
	}
	if _, err := io.ReadFull(sr.r, b); err != nil {
		sr.err = fmt.Errorf("relation: snapshot truncated: %w", err)
		return nil
	}
	return b
}

// U8, U32, U64, F64, Str, Len, and Err are the primitive little-endian
// decoders shared by the snapshot codecs.
func (sr *SnapReader) U8() uint8 {
	b := sr.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (sr *SnapReader) U32() uint32 {
	b := sr.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (sr *SnapReader) U64() uint64 {
	b := sr.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (sr *SnapReader) F64() float64 { return math.Float64frombits(sr.U64()) }

// SumCountsInto bulk-decodes len(dst) (sum, count) pairs into dst, the
// counterpart of SnapWriter.SumCounts.
//
//tsexplain:hotpath
func (sr *SnapReader) SumCountsInto(dst []SumCount) {
	if sr.err != nil {
		return
	}
	if sr.buf != nil {
		if (len(sr.buf)-sr.pos)/16 < len(dst) {
			sr.truncated()
			return
		}
		b := sr.buf[sr.pos:]
		for i := range dst {
			dst[i].Sum = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16:]))
			dst[i].Count = math.Float64frombits(binary.LittleEndian.Uint64(b[i*16+8:]))
		}
		sr.pos += len(dst) * 16
		return
	}
	var b [16]byte
	for i := range dst {
		if _, err := io.ReadFull(sr.r, b[:]); err != nil {
			sr.err = fmt.Errorf("relation: snapshot truncated: %w", err) //tsexplain:allowalloc cold error path; the decode aborts here
			return
		}
		dst[i].Sum = math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))
		dst[i].Count = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	}
}

// Len decodes a u32 length field, failing the stream when it exceeds the
// sanity cap. The comparison is explicitly 64-bit so the guard holds on
// 32-bit platforms, where int(n) of an unguarded value would go negative.
func (sr *SnapReader) Len(what string) int {
	n := sr.U32()
	if sr.err == nil && uint64(n) > snapMaxLen {
		sr.err = fmt.Errorf("relation: snapshot %s length %d exceeds sanity cap", what, n)
	}
	return int(n)
}

func (sr *SnapReader) Str() string {
	n := sr.Len("string")
	b := sr.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Uvarint decodes a LEB128 unsigned value (v2 counterpart of Uvarint).
func (sr *SnapReader) Uvarint() uint64 {
	if sr.err != nil {
		return 0
	}
	if sr.buf != nil {
		v, n := binary.Uvarint(sr.buf[sr.pos:])
		if n <= 0 {
			sr.err = fmt.Errorf("relation: snapshot: bad varint")
			return 0
		}
		sr.pos += n
		return v
	}
	v, err := binary.ReadUvarint(sr.r)
	if err != nil {
		sr.err = fmt.Errorf("relation: snapshot truncated varint: %w", err)
		return 0
	}
	return v
}

// Varint decodes a zigzag varint (v2 counterpart of Varint).
func (sr *SnapReader) Varint() int64 {
	if sr.err != nil {
		return 0
	}
	if sr.buf != nil {
		v, n := binary.Varint(sr.buf[sr.pos:])
		if n <= 0 {
			sr.err = fmt.Errorf("relation: snapshot: bad varint")
			return 0
		}
		sr.pos += n
		return v
	}
	v, err := binary.ReadVarint(sr.r)
	if err != nil {
		sr.err = fmt.Errorf("relation: snapshot truncated varint: %w", err)
		return 0
	}
	return v
}

// VLen decodes a uvarint length field under the same sanity cap as Len.
func (sr *SnapReader) VLen(what string) int {
	n := sr.Uvarint()
	if sr.err == nil && n > snapMaxLen {
		sr.err = fmt.Errorf("relation: snapshot %s length %d exceeds sanity cap", what, n)
	}
	return int(n)
}

// VStr decodes a uvarint-length-prefixed string (v2 framing).
func (sr *SnapReader) VStr() string {
	n := sr.VLen("string")
	b := sr.bytes(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// F64ColumnInto decodes a column written by F64Column into dst.
//
//tsexplain:hotpath
func (sr *SnapReader) F64ColumnInto(dst []float64) {
	switch flag := sr.U8(); flag {
	case 1:
		for i := range dst {
			dst[i] = float64(sr.Varint())
		}
	case 2:
		for i := range dst {
			dst[i] = sr.DecimalF64()
		}
	case 0:
		for i := range dst {
			dst[i] = sr.F64()
		}
	default:
		if sr.err == nil {
			sr.err = fmt.Errorf("relation: snapshot: unknown float column flag %d", flag) //tsexplain:allowalloc cold error path; the decode aborts here
		}
	}
}

// SumCountsV2Into decodes a series written by SumCountsV2 into dst, which
// must already be sized to the series length (sparse layouts rely on it
// to bound indexes). dst is zeroed first so absent sparse entries decode
// to exact +0.0 pairs.
//
//tsexplain:hotpath
func (sr *SnapReader) SumCountsV2Into(dst []SumCount) {
	layout := sr.U8()
	if sr.err != nil {
		return
	}
	switch layout {
	case scDenseRaw:
		sr.SumCountsInto(dst)
		return
	case scDenseIntegral:
		for i := range dst {
			dst[i].Sum = float64(sr.Varint())
			dst[i].Count = float64(sr.Uvarint())
		}
		return
	case scSparseIntegral, scSparseRawSum, scSparseRaw, scSparseDecimal:
	default:
		sr.err = fmt.Errorf("relation: snapshot: unknown series layout %d", layout) //tsexplain:allowalloc cold error path; the decode aborts here
		return
	}
	for i := range dst {
		dst[i] = SumCount{}
	}
	nnz := sr.VLen("series entries")
	if sr.err != nil {
		return
	}
	if nnz > len(dst) {
		sr.err = fmt.Errorf("relation: snapshot: %d sparse entries exceed series length %d", nnz, len(dst)) //tsexplain:allowalloc cold error path; the decode aborts here
		return
	}
	idx := -1
	for k := 0; k < nnz; k++ {
		gap := sr.Uvarint()
		if sr.err != nil {
			return
		}
		if gap > uint64(len(dst)) {
			sr.err = fmt.Errorf("relation: snapshot: sparse gap %d exceeds series length %d", gap, len(dst)) //tsexplain:allowalloc cold error path; the decode aborts here
			return
		}
		idx += int(gap) + 1
		if idx < 0 || idx >= len(dst) {
			sr.err = fmt.Errorf("relation: snapshot: sparse entry index %d out of series of %d", idx, len(dst)) //tsexplain:allowalloc cold error path; the decode aborts here
			return
		}
		switch layout {
		case scSparseIntegral:
			dst[idx].Sum = float64(sr.Varint())
			dst[idx].Count = float64(sr.Uvarint())
		case scSparseRawSum:
			dst[idx].Sum = sr.F64()
			dst[idx].Count = float64(sr.Uvarint())
		case scSparseDecimal:
			dst[idx].Sum = sr.DecimalF64()
			dst[idx].Count = float64(sr.Uvarint())
		default:
			dst[idx].Sum = sr.F64()
			dst[idx].Count = sr.F64()
		}
	}
}

// Err returns the first decoding error, if any.
func (sr *SnapReader) Err() error { return sr.err }

// WriteSnapshot encodes the relation in the versioned binary snapshot
// format: time labels and per-row time indexes, every dimension's
// dictionary and id column, and every measure column. The encoding is
// little-endian on every platform and captures the dictionary id
// assignment exactly, so a decoded relation is bit-identical to the
// original — including candidate IDs derived from dictionary order by
// the explain layer.
func (r *Relation) WriteSnapshot(w io.Writer) error {
	sw := NewSnapWriter(w)
	r.encodeSnapshot(sw)
	return sw.Flush()
}

// EncodeSnapshot appends the relation's snapshot section to an existing
// snapshot writer (the catalog writes the relation and universe sections
// into one checksummed file).
func (r *Relation) EncodeSnapshot(sw *SnapWriter) { r.encodeSnapshot(sw) }

func (r *Relation) encodeSnapshot(sw *SnapWriter) {
	sw.bytes([]byte(relSnapMagic))
	version := uint8(relSnapVersion2)
	if len(r.hiers) > 0 || len(r.derived) > 0 {
		version = relSnapVersion3
	}
	sw.U8(version)
	sw.VStr(r.name)
	sw.VStr(r.timeName)
	sw.Uvarint(uint64(r.numRows))
	sw.Uvarint(uint64(len(r.timeLabels)))
	for _, l := range r.timeLabels {
		sw.VStr(l)
	}
	// Rows arrive in (nearly) time order, so deltas between consecutive
	// time indexes are tiny — zigzag varints make the column ~1 byte/row.
	prev := int64(0)
	for _, t := range r.timeIdx {
		sw.Varint(int64(t) - prev)
		prev = int64(t)
	}
	sw.Uvarint(uint64(len(r.dims)))
	for _, d := range r.dims {
		sw.VStr(d.name)
		sw.Uvarint(uint64(len(d.dict)))
		for _, v := range d.dict {
			sw.VStr(v)
		}
		// Dictionary ids are bounded by the cardinality, so uvarints cut
		// the dominant id columns to 1–2 bytes per row.
		for _, id := range d.ids {
			sw.Uvarint(uint64(id))
		}
	}
	sw.Uvarint(uint64(len(r.measures)))
	for _, m := range r.measures {
		sw.VStr(m.name)
		sw.F64Column(m.vals)
	}
	if version == relSnapVersion3 {
		r.encodeMetaV3(sw)
	}
}

// encodeMetaV3 writes the v3 trailing metadata section: declared
// hierarchies (name plus level dimension indexes — the parent maps are
// rebuilt and revalidated from the rows on decode) and derived-column
// records, including frozen range-bin edges so restored relations bin
// appended rows bit-identically.
func (r *Relation) encodeMetaV3(sw *SnapWriter) {
	sw.Uvarint(uint64(len(r.hiers)))
	for _, h := range r.hiers {
		sw.VStr(h.name)
		sw.Uvarint(uint64(len(h.dims)))
		for _, d := range h.dims {
			sw.Uvarint(uint64(d))
		}
	}
	sw.Uvarint(uint64(len(r.derived)))
	for i := range r.derived {
		dc := &r.derived[i]
		sw.Uvarint(uint64(dc.dim))
		sw.U8(dc.kind)
		sw.Uvarint(uint64(dc.source))
		sw.Uvarint(uint64(dc.level))
		sw.Uvarint(uint64(dc.nparts))
		sw.VStr(dc.delim)
		sw.Uvarint(uint64(len(dc.edges)))
		for _, e := range dc.edges {
			sw.F64(e)
		}
	}
}

// EncodeSnapshotV1 writes the legacy fixed-width v1 relation section. It
// exists so cross-version tests (and any tool that must produce files for
// old readers) can still emit the format v1-era deployments understand.
func (r *Relation) EncodeSnapshotV1(sw *SnapWriter) {
	sw.bytes([]byte(relSnapMagic))
	sw.U8(relSnapVersion1)
	sw.Str(r.name)
	sw.Str(r.timeName)
	sw.U32(uint32(r.numRows))
	sw.U32(uint32(len(r.timeLabels)))
	for _, l := range r.timeLabels {
		sw.Str(l)
	}
	for _, t := range r.timeIdx {
		sw.U32(uint32(t))
	}
	sw.U32(uint32(len(r.dims)))
	for _, d := range r.dims {
		sw.Str(d.name)
		sw.U32(uint32(len(d.dict)))
		for _, v := range d.dict {
			sw.Str(v)
		}
		for _, id := range d.ids {
			sw.U32(id)
		}
	}
	sw.U32(uint32(len(r.measures)))
	for _, m := range r.measures {
		sw.Str(m.name)
		for _, v := range m.vals {
			sw.F64(v)
		}
	}
}

// ReadSnapshot decodes a relation written by WriteSnapshot. Structural
// invariants — id ranges, column lengths, duplicate names — are
// re-validated during decoding, so a corrupted snapshot fails loudly
// rather than producing a relation that violates the invariants the
// engine relies on. (Bit-flips inside string or float payloads are the
// catalog checksum's job; this layer guarantees structural soundness.)
func ReadSnapshot(rd io.Reader) (*Relation, error) {
	sr := NewSnapReader(rd)
	r := decodeSnapshot(sr)
	if sr.err != nil {
		return nil, sr.err
	}
	return r, nil
}

// DecodeSnapshot decodes one relation section from an existing snapshot
// reader, the counterpart of EncodeSnapshot. Check the reader's Err
// afterwards.
func DecodeSnapshot(sr *SnapReader) *Relation { return decodeSnapshot(sr) }

func decodeSnapshot(sr *SnapReader) *Relation {
	fail := func(format string, args ...any) *Relation {
		if sr.err == nil {
			sr.err = fmt.Errorf("relation: snapshot: "+format, args...)
		}
		return nil
	}
	if magic := sr.bytes(len(relSnapMagic)); string(magic) != relSnapMagic {
		return fail("bad magic %q", magic)
	}
	version := sr.U8()
	if version != relSnapVersion1 && version != relSnapVersion2 && version != relSnapVersion3 {
		return fail("unsupported version %d (want %d..%d)", version, relSnapVersion1, relSnapVersion3)
	}
	// v1 frames lengths/strings as fixed u32; v2/v3 as varints. Everything
	// else — field order, validation — is identical, so one decoding flow
	// handles both through these two shims.
	rdLen := sr.Len
	rdStr := sr.Str
	if version >= relSnapVersion2 {
		rdLen = sr.VLen
		rdStr = sr.VStr
	}
	r := &Relation{
		name:     rdStr(),
		timeName: rdStr(),
	}
	r.numRows = rdLen("row count")
	nLabels := rdLen("time labels")
	if sr.err != nil {
		return nil
	}
	r.timeLabels = make([]string, nLabels)
	r.timePos = make(map[string]int32, nLabels)
	for i := range r.timeLabels {
		l := rdStr()
		if _, dup := r.timePos[l]; dup && sr.err == nil {
			return fail("duplicate time label %q", l)
		}
		r.timeLabels[i] = l
		r.timePos[l] = int32(i)
	}
	r.timeIdx = make([]int32, r.numRows)
	prev := int64(0)
	for i := range r.timeIdx {
		var t int64
		if version >= relSnapVersion2 {
			t = prev + sr.Varint()
			prev = t
		} else {
			t = int64(sr.U32())
		}
		if (t < 0 || t >= int64(nLabels)) && sr.err == nil {
			return fail("row %d time index %d out of range (%d labels)", i, t, nLabels)
		}
		r.timeIdx[i] = int32(t)
	}
	nDims := rdLen("dimension count")
	if sr.err != nil {
		return nil
	}
	r.dimByName = make(map[string]int, nDims)
	for di := 0; di < nDims; di++ {
		col := &DimColumn{name: rdStr()}
		if _, dup := r.dimByName[col.name]; dup && sr.err == nil {
			return fail("duplicate dimension %q", col.name)
		}
		nDict := rdLen("dictionary")
		if sr.err != nil {
			return nil
		}
		col.dict = make([]string, nDict)
		col.index = make(map[string]uint32, nDict)
		for i := range col.dict {
			v := rdStr()
			if _, dup := col.index[v]; dup && sr.err == nil {
				return fail("dimension %q: duplicate dictionary value %q", col.name, v)
			}
			col.dict[i] = v
			col.index[v] = uint32(i)
		}
		col.ids = make([]uint32, r.numRows)
		for i := range col.ids {
			var id uint64
			if version >= relSnapVersion2 {
				id = sr.Uvarint()
			} else {
				id = uint64(sr.U32())
			}
			if id >= uint64(nDict) && sr.err == nil {
				return fail("dimension %q: row %d id %d out of range (%d values)", col.name, i, id, nDict)
			}
			col.ids[i] = uint32(id)
		}
		r.dimByName[col.name] = di
		r.dims = append(r.dims, col)
	}
	nMeas := rdLen("measure count")
	if sr.err != nil {
		return nil
	}
	r.measureByName = make(map[string]int, nMeas)
	for mi := 0; mi < nMeas; mi++ {
		col := &MeasureColumn{name: rdStr()}
		if _, dup := r.measureByName[col.name]; dup && sr.err == nil {
			return fail("duplicate measure %q", col.name)
		}
		col.vals = make([]float64, r.numRows)
		if version >= relSnapVersion2 {
			sr.F64ColumnInto(col.vals)
		} else {
			for i := range col.vals {
				col.vals[i] = sr.F64()
			}
		}
		r.measureByName[col.name] = mi
		r.measures = append(r.measures, col)
	}
	if sr.err != nil {
		return nil
	}
	if version == relSnapVersion3 {
		if msg := r.decodeMetaV3(sr); msg != "" {
			return fail("%s", msg)
		}
		if sr.err != nil {
			return nil
		}
	}
	return r
}

// decodeMetaV3 reads the v3 trailing metadata section and re-derives the
// hierarchy parent maps from the decoded rows (re-running the
// single-parent validation, so a corrupted file cannot smuggle in an
// inconsistent taxonomy). It returns a non-empty message on structural
// failure.
func (r *Relation) decodeMetaV3(sr *SnapReader) string {
	nHier := sr.VLen("hierarchy count")
	if sr.err != nil {
		return ""
	}
	names := make(map[string]bool, nHier)
	for hi := 0; hi < nHier; hi++ {
		name := sr.VStr()
		nLevels := sr.VLen("hierarchy levels")
		if sr.err != nil {
			return ""
		}
		if nLevels < 2 {
			return fmt.Sprintf("hierarchy %q has %d level(s)", name, nLevels)
		}
		levels := make([]string, nLevels)
		for l := range levels {
			d := sr.Uvarint()
			if sr.err != nil {
				return ""
			}
			if d >= uint64(len(r.dims)) {
				return fmt.Sprintf("hierarchy %q level %d references dimension %d of %d", name, l, d, len(r.dims))
			}
			levels[l] = r.dims[d].name
		}
		if names[name] {
			return fmt.Sprintf("duplicate hierarchy %q", name)
		}
		names[name] = true
		if err := r.DeclareHierarchy(name, levels); err != nil {
			return err.Error()
		}
	}
	nDerived := sr.VLen("derived column count")
	if sr.err != nil {
		return ""
	}
	base := len(r.dims) - nDerived
	if base < 0 {
		return fmt.Sprintf("%d derived columns exceed %d dimensions", nDerived, len(r.dims))
	}
	for i := 0; i < nDerived; i++ {
		dc := derivedCol{
			dim:    int(sr.Uvarint()),
			kind:   sr.U8(),
			source: int(sr.Uvarint()),
			level:  int(sr.Uvarint()),
			nparts: int(sr.Uvarint()),
			delim:  sr.VStr(),
		}
		nEdges := sr.VLen("range bin edges")
		if sr.err != nil {
			return ""
		}
		if nEdges > 0 {
			dc.edges = make([]float64, nEdges)
			for e := range dc.edges {
				dc.edges[e] = sr.F64()
			}
		}
		if sr.err != nil {
			return ""
		}
		// Derived columns occupy the dimension tail in order; anything else
		// breaks the base-width append contract.
		if dc.dim != base+i {
			return fmt.Sprintf("derived column %d at dimension %d, want %d", i, dc.dim, base+i)
		}
		switch dc.kind {
		case derivedPathLevel:
			if dc.source < 0 || dc.source >= base || dc.level < 0 || dc.level >= dc.nparts || dc.delim == "" {
				return fmt.Sprintf("derived path column %d is inconsistent", i)
			}
		case derivedRangeBin:
			if dc.source < 0 || dc.source >= len(r.measures) {
				return fmt.Sprintf("derived range bin column %d references measure %d of %d", i, dc.source, len(r.measures))
			}
			for e := 1; e < len(dc.edges); e++ {
				if !(dc.edges[e] > dc.edges[e-1]) {
					return fmt.Sprintf("derived range bin column %d has non-increasing edges", i)
				}
			}
		default:
			return fmt.Sprintf("derived column %d has unknown kind %d", i, dc.kind)
		}
		r.derived = append(r.derived, dc)
	}
	return ""
}

// Clone returns a deep copy of the relation: mutations of the receiver
// (AppendRows) never reach the copy and vice versa. The serving layer
// clones the live streaming relation when publishing a fresh immutable
// view for pooled engines.
func (r *Relation) Clone() *Relation {
	out := &Relation{
		name:          r.name,
		numRows:       r.numRows,
		timeName:      r.timeName,
		timeIdx:       append([]int32(nil), r.timeIdx...),
		timeLabels:    append([]string(nil), r.timeLabels...),
		timePos:       make(map[string]int32, len(r.timeLabels)),
		dimByName:     make(map[string]int, len(r.dims)),
		measureByName: make(map[string]int, len(r.measures)),
	}
	for i, l := range out.timeLabels {
		out.timePos[l] = int32(i)
	}
	for i, d := range r.dims {
		col := &DimColumn{
			name:  d.name,
			ids:   append([]uint32(nil), d.ids...),
			dict:  append([]string(nil), d.dict...),
			index: make(map[string]uint32, len(d.dict)),
		}
		for id, v := range col.dict {
			col.index[v] = uint32(id)
		}
		out.dimByName[col.name] = i
		out.dims = append(out.dims, col)
	}
	for i, m := range r.measures {
		out.measureByName[m.name] = i
		out.measures = append(out.measures, &MeasureColumn{name: m.name, vals: append([]float64(nil), m.vals...)})
	}
	for _, h := range r.hiers {
		ch := &Hierarchy{
			name:    h.name,
			dims:    append([]int(nil), h.dims...),
			parents: make([][]uint32, len(h.parents)),
		}
		for l := 1; l < len(h.parents); l++ {
			ch.parents[l] = append([]uint32(nil), h.parents[l]...)
		}
		out.hiers = append(out.hiers, ch)
	}
	for _, dc := range r.derived {
		dc.edges = append([]float64(nil), dc.edges...)
		out.derived = append(out.derived, dc)
	}
	return out
}
