package relation

import (
	"fmt"
	"unsafe"
)

// This file holds the zero-copy side of the snapshot arena: when a raw
// little-endian []SumCount section sits in an already-materialized (or
// memory-mapped) payload at a compatible offset, the decoder can alias
// the bytes in place instead of copying them onto the heap. All unsafe
// code in the codec lives here.

// hostLittleEndian reports whether the running machine stores multi-byte
// values little-endian — the snapshot wire order. On a big-endian host
// aliasing is never attempted and decoding falls back to the copying
// path, which byte-swaps per value.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// SkipPad consumes alignment padding written by SnapWriter.Align16: a
// one-byte pad length in [0, 15] followed by that many zero bytes.
func (sr *SnapReader) SkipPad() {
	n := sr.U8()
	if sr.err == nil && n >= 16 {
		sr.err = fmt.Errorf("relation: snapshot: pad length %d out of range", n)
		return
	}
	sr.bytes(int(n))
}

// AliasSumCounts returns the next n (sum, count) pairs as a []SumCount
// aliasing the reader's backing buffer directly, consuming n*16 bytes.
// It succeeds only when the reader decodes from an in-memory payload,
// the host is little-endian, and the current position is suitably
// aligned for SumCount; otherwise it returns (nil, false) WITHOUT
// consuming anything, and the caller decodes through the copying path.
// The returned slice is read-only and stays valid exactly as long as
// the backing buffer does — callers aliasing a memory mapping must keep
// the mapping's owner reachable.
//
//tsexplain:hotpath
func (sr *SnapReader) AliasSumCounts(n int) ([]SumCount, bool) {
	if sr.err != nil || sr.buf == nil || !hostLittleEndian || n <= 0 {
		return nil, false
	}
	if n > (len(sr.buf)-sr.pos)/16 {
		return nil, false
	}
	b := sr.buf[sr.pos : sr.pos+n*16]
	if uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(SumCount{}) != 0 {
		return nil, false
	}
	sr.pos += n * 16
	return unsafe.Slice((*SumCount)(unsafe.Pointer(&b[0])), n), true
}
