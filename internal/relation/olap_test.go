package relation

import (
	"reflect"
	"testing"
)

func TestRollUp(t *testing.T) {
	r := buildSales(t)
	rolled, err := RollUp(r, []string{"state"})
	if err != nil {
		t.Fatal(err)
	}
	if rolled.NumDims() != 1 || rolled.DimIndex("state") != 0 {
		t.Fatalf("rolled dims = %v", rolled.DimNames())
	}
	// One row per (date, state) present in the original.
	if got, want := rolled.NumRows(), 6; got != want {
		t.Errorf("rolled rows = %d, want %d", got, want)
	}
	// Measures summed: NY on day 1 = 10 + 5 = 15.
	c, err := NewConjunction(rolled, map[string]string{"state": "NY"})
	if err != nil {
		t.Fatal(err)
	}
	sc := rolled.AggregateSeriesWhere(0, c)
	if sc[0].Sum != 15 || sc[0].Count != 1 {
		t.Errorf("NY day1 after rollup = %+v, want sum 15 in one row", sc[0])
	}
	// The overall aggregated series is unchanged by the rollup.
	a := Values(Sum, r.AggregateSeries(0))
	b := Values(Sum, rolled.AggregateSeries(0))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("rollup changed the aggregate: %v vs %v", b, a)
	}
	if _, err := RollUp(r, []string{"nope"}); err == nil {
		t.Error("unknown dim: want error")
	}
}

func TestRollUpToNothing(t *testing.T) {
	r := buildSales(t)
	rolled, err := RollUp(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rolled.NumDims() != 0 {
		t.Fatalf("dims = %d, want 0", rolled.NumDims())
	}
	// One row per timestamp carrying the daily total.
	if got, want := rolled.NumRows(), 3; got != want {
		t.Errorf("rows = %d, want %d", got, want)
	}
	a := Values(Sum, r.AggregateSeries(0))
	b := Values(Sum, rolled.AggregateSeries(0))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("aggregate changed: %v vs %v", b, a)
	}
}

func TestDice(t *testing.T) {
	r := buildSales(t)
	diced, err := Dice(r, map[string][]string{
		"state":    {"NY", "CA"},
		"category": {"beer"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// beer rows only: 4 of them.
	if got, want := diced.NumRows(), 4; got != want {
		t.Errorf("diced rows = %d, want %d", got, want)
	}
	for row := 0; row < diced.NumRows(); row++ {
		if diced.DimValue(diced.DimIndex("category"), row) != "beer" {
			t.Fatal("dice leaked a non-beer row")
		}
	}
	// Absent values match nothing.
	empty, err := Dice(r, map[string][]string{"state": {"TX"}})
	if err != nil {
		t.Fatal(err)
	}
	if empty.NumRows() != 0 {
		t.Errorf("TX dice rows = %d, want 0", empty.NumRows())
	}
	if _, err := Dice(r, map[string][]string{"nope": {"x"}}); err == nil {
		t.Error("unknown dim: want error")
	}
}

func TestTimeRange(t *testing.T) {
	r := buildSales(t)
	sub, err := TimeRange(r, "2020-01-02", "2020-01-03")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sub.NumTimestamps(), 2; got != want {
		t.Fatalf("range n = %d, want %d", got, want)
	}
	if sub.TimeLabel(0) != "2020-01-02" {
		t.Errorf("first label = %q", sub.TimeLabel(0))
	}
	vals := Values(Sum, sub.AggregateSeries(0))
	if !reflect.DeepEqual(vals, []float64{15, 19}) {
		t.Errorf("range series = %v, want [15 19]", vals)
	}
	for _, bad := range [][2]string{
		{"nope", "2020-01-03"},
		{"2020-01-02", "nope"},
		{"2020-01-03", "2020-01-01"},
	} {
		if _, err := TimeRange(r, bad[0], bad[1]); err == nil {
			t.Errorf("TimeRange(%q,%q): want error", bad[0], bad[1])
		}
	}
}
