package relation

import (
	"bytes"
	"strings"
	"testing"
)

// taxRelation builds a small relation with explicit state/county columns
// plus a path column mirroring them.
func taxRelation(t *testing.T) *Relation {
	t.Helper()
	b := NewBuilder("tax", "day", []string{"state", "county", "path"}, []string{"sales"})
	rows := []struct {
		day, state, county string
		v                  float64
	}{
		{"d1", "TX", "Houston", 10},
		{"d1", "TX", "Austin", 5},
		{"d1", "CA", "Fresno", 7},
		{"d2", "TX", "Houston", 11},
		{"d2", "CA", "Fresno", 2},
		{"d2", "CA", "Shasta", 4},
	}
	for _, r := range rows {
		if err := b.Append(r.day, []string{r.state, r.county, r.state + "/" + r.county}, []float64{r.v}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDeclareHierarchy(t *testing.T) {
	r := taxRelation(t)
	if err := r.DeclareHierarchy("geo", []string{"state", "county"}); err != nil {
		t.Fatal(err)
	}
	h := r.HierarchyNamed("geo")
	if h == nil || h.NumLevels() != 2 {
		t.Fatalf("hierarchy not registered: %+v", h)
	}
	county := r.Dim(h.LevelDim(1))
	state := r.Dim(h.LevelDim(0))
	hid, _ := county.ID("Houston")
	if got := state.Value(h.ParentID(1, hid)); got != "TX" {
		t.Fatalf("parent of Houston = %q, want TX", got)
	}

	// Redeclaration and overlapping dimensions are rejected.
	if err := r.DeclareHierarchy("geo", []string{"state", "county"}); err == nil {
		t.Fatal("duplicate hierarchy name accepted")
	}
	if err := r.DeclareHierarchy("geo2", []string{"state", "path"}); err == nil {
		t.Fatal("dimension in two hierarchies accepted")
	}
}

func TestDeclareHierarchyRejectsMultiParent(t *testing.T) {
	b := NewBuilder("bad", "day", []string{"state", "county"}, []string{"v"})
	_ = b.Append("d1", []string{"TX", "Springfield"}, []float64{1})
	_ = b.Append("d1", []string{"CA", "Springfield"}, []float64{1})
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DeclareHierarchy("geo", []string{"state", "county"}); err == nil {
		t.Fatal("multi-parent county accepted")
	} else if !strings.Contains(err.Error(), "Springfield") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestDeriveHierarchyFromPath(t *testing.T) {
	r := taxRelation(t)
	if err := r.DeriveHierarchyFromPath("geo", "path", "/", []string{"p_state", "p_county"}); err != nil {
		t.Fatal(err)
	}
	if r.NumDims() != 5 || r.NumBaseDims() != 3 {
		t.Fatalf("dims = %d base = %d, want 5/3", r.NumDims(), r.NumBaseDims())
	}
	if got := r.DimValue(r.DimIndex("p_state"), 2); got != "CA" {
		t.Fatalf("p_state row 2 = %q, want CA", got)
	}
	if got := r.DimValue(r.DimIndex("p_county"), 0); got != "Houston" {
		t.Fatalf("p_county row 0 = %q, want Houston", got)
	}
	h := r.HierarchyNamed("geo")
	if h == nil || h.NumLevels() != 2 {
		t.Fatal("derived hierarchy not registered")
	}

	// Wrong segment counts are rejected without mutating the relation.
	r2 := taxRelation(t)
	if err := r2.DeriveHierarchyFromPath("geo", "state", "/", []string{"a", "b"}); err == nil {
		t.Fatal("non-path column accepted")
	}
	if r2.NumDims() != 3 {
		t.Fatalf("failed derivation mutated the relation: %d dims", r2.NumDims())
	}
	// The path column itself cannot be one of its level names.
	if err := r2.DeriveHierarchyFromPath("geo", "path", "/", []string{"path", "b"}); err == nil {
		t.Fatal("cyclic path level accepted")
	}
}

func TestAppendRowsGrowsHierarchy(t *testing.T) {
	r := taxRelation(t)
	if err := r.DeclareHierarchy("geo", []string{"state", "county"}); err != nil {
		t.Fatal(err)
	}
	// New county under a new state extends the parent maps.
	err := r.AppendRows([]string{"d3"},
		[][]string{{"NY", "Kings", "NY/Kings"}},
		[][]float64{{3}})
	if err != nil {
		t.Fatal(err)
	}
	h := r.HierarchyNamed("geo")
	county := r.Dim(h.LevelDim(1))
	kid, ok := county.ID("Kings")
	if !ok {
		t.Fatal("Kings not appended")
	}
	if got := r.Dim(h.LevelDim(0)).Value(h.ParentID(1, kid)); got != "NY" {
		t.Fatalf("parent of Kings = %q, want NY", got)
	}
	// A known county moving to a different state is rejected pre-mutation.
	before := r.NumRows()
	err = r.AppendRows([]string{"d3"},
		[][]string{{"CA", "Houston", "CA/Houston"}},
		[][]float64{{1}})
	if err == nil {
		t.Fatal("re-parented county accepted")
	}
	if r.NumRows() != before {
		t.Fatal("failed append mutated the relation")
	}
}

func TestAppendRowsAutoDerives(t *testing.T) {
	r := taxRelation(t)
	if err := r.DeriveHierarchyFromPath("geo", "path", "/", []string{"p_state", "p_county"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRangeBin("sales_bin", "sales", 3); err != nil {
		t.Fatal(err)
	}
	// Base-width rows: derived columns are recomputed engine-side.
	err := r.AppendRows([]string{"d3"},
		[][]string{{"NY", "Kings", "NY/Kings"}},
		[][]float64{{100}})
	if err != nil {
		t.Fatal(err)
	}
	last := r.NumRows() - 1
	if got := r.DimValue(r.DimIndex("p_county"), last); got != "Kings" {
		t.Fatalf("auto-derived p_county = %q, want Kings", got)
	}
	edges, _ := r.RangeBinEdges("sales_bin")
	wantBin := BinLabel(edges, AssignBin(edges, 100))
	if got := r.DimValue(r.DimIndex("sales_bin"), last); got != wantBin {
		t.Fatalf("auto-derived sales_bin = %q, want %q", got, wantBin)
	}
	// Full-width rows (snapshot replay shape) are accepted as-is.
	full := make([]string, r.NumDims())
	for d := range full {
		full[d] = r.DimValue(d, last)
	}
	if err := r.AppendRows([]string{"d3"}, [][]string{full}, [][]float64{{100}}); err != nil {
		t.Fatalf("full-width append: %v", err)
	}
}

func TestHierarchySnapshotRoundTrip(t *testing.T) {
	r := taxRelation(t)
	if err := r.DeriveHierarchyFromPath("geo", "path", "/", []string{"p_state", "p_county"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRangeBin("sales_bin", "sales", 3); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDims() != r.NumDims() || got.NumBaseDims() != r.NumBaseDims() {
		t.Fatalf("restored dims = %d/%d, want %d/%d",
			got.NumDims(), got.NumBaseDims(), r.NumDims(), r.NumBaseDims())
	}
	h := got.HierarchyNamed("geo")
	if h == nil || h.NumLevels() != 2 {
		t.Fatal("hierarchy lost across snapshot")
	}
	we, _ := r.RangeBinEdges("sales_bin")
	ge, ok := got.RangeBinEdges("sales_bin")
	if !ok {
		t.Fatal("range-bin edges lost across snapshot")
	}
	if len(we) != len(ge) {
		t.Fatalf("edge count %d != %d", len(ge), len(we))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("edge %d: %v != %v (edges must restore bit-identical)", i, ge[i], we[i])
		}
	}
	// Re-encoding the restored relation is byte-identical.
	var buf2 bytes.Buffer
	if err := got.WriteSnapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot round-trip not byte-stable")
	}
}

func TestSnapshotWithoutHierarchyStaysV2(t *testing.T) {
	// Relations with no hierarchy/range-bin metadata must keep emitting the
	// pre-existing v2 format so committed snapshots stay byte-identical.
	r := taxRelation(t)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < len(relSnapMagic)+1 {
		t.Fatal("short snapshot")
	}
	if v := b[len(relSnapMagic)]; v != relSnapVersion2 {
		t.Fatalf("plain relation encoded as version %d, want %d", v, relSnapVersion2)
	}
}
