// Package relation implements the in-memory columnar relation that
// TSExplain aggregates and explains.
//
// A Relation models the result of loading one table: a designated time
// dimension (an ordinal attribute such as a date), any number of
// categorical dimension attributes (dictionary-encoded), and any number of
// numeric measure attributes. The paper's engine assumes such a relation
// (or the equivalent data cube) is maintained in memory by the host
// analytics tool; this package is that substrate.
//
// The zero value of Relation is not useful; construct one with a Builder
// or by reading a CSV file with ReadCSV.
package relation

import (
	"fmt"
	"sort"
)

// DimColumn is a dictionary-encoded categorical column. Row values are
// stored as indexes into the column's dictionary so predicates compare
// integers rather than strings.
type DimColumn struct {
	name  string
	ids   []uint32          // per-row dictionary index
	dict  []string          // dictionary: id -> value
	index map[string]uint32 // reverse dictionary: value -> id
}

// Name returns the attribute name of the column.
func (c *DimColumn) Name() string { return c.name }

// Cardinality returns the number of distinct values in the column.
func (c *DimColumn) Cardinality() int { return len(c.dict) }

// Value returns the string value of the given dictionary id.
func (c *DimColumn) Value(id uint32) string { return c.dict[id] }

// ID returns the dictionary id for the given value. ok is false when the
// value never occurs in the column.
func (c *DimColumn) ID(value string) (id uint32, ok bool) {
	id, ok = c.index[value]
	return id, ok
}

// Values returns a copy of the dictionary (all distinct values, in first-
// appearance order).
func (c *DimColumn) Values() []string {
	out := make([]string, len(c.dict))
	copy(out, c.dict)
	return out
}

// MeasureColumn is a numeric column.
type MeasureColumn struct {
	name string
	vals []float64
}

// Name returns the attribute name of the column.
func (c *MeasureColumn) Name() string { return c.name }

// Relation is an in-memory table with one time dimension, zero or more
// categorical dimensions, and zero or more measures. A finished Relation
// never rewrites history, but it may grow at the tail: AppendRows ingests
// rows at (or after) the current last timestamp, which is how the
// real-time extension streams data in without rebuilding the table.
type Relation struct {
	name string

	numRows int

	timeName   string
	timeIdx    []int32          // per-row index into timeLabels
	timeLabels []string         // distinct time values, in series order
	timePos    map[string]int32 // reverse index: label -> series position

	dims      []*DimColumn
	dimByName map[string]int

	measures      []*MeasureColumn
	measureByName map[string]int

	// hiers are the declared taxonomies over dimension columns; derived
	// records how trailing derived dimension columns (path levels, range
	// bins) are recomputed for appended base-width rows. Both are set at
	// load time, before the relation is shared.
	hiers   []*Hierarchy
	derived []derivedCol
}

// Name returns the relation's name (informational only).
func (r *Relation) Name() string { return r.name }

// NumRows returns the number of rows in the relation.
func (r *Relation) NumRows() int { return r.numRows }

// TimeName returns the name of the time dimension.
func (r *Relation) TimeName() string { return r.timeName }

// NumTimestamps returns the number of distinct time values, i.e. the length
// of any aggregated time series derived from this relation.
func (r *Relation) NumTimestamps() int { return len(r.timeLabels) }

// TimeLabel returns the i-th time value in series order.
func (r *Relation) TimeLabel(i int) string { return r.timeLabels[i] }

// TimeLabels returns all distinct time values in series order.
func (r *Relation) TimeLabels() []string {
	out := make([]string, len(r.timeLabels))
	copy(out, r.timeLabels)
	return out
}

// TimeIndex returns the time position (0-based) of the given row.
func (r *Relation) TimeIndex(row int) int { return int(r.timeIdx[row]) }

// NumDims returns the number of categorical dimension attributes.
func (r *Relation) NumDims() int { return len(r.dims) }

// Dim returns the i-th dimension column.
func (r *Relation) Dim(i int) *DimColumn { return r.dims[i] }

// DimIndex returns the position of the named dimension attribute, or -1.
func (r *Relation) DimIndex(name string) int {
	if i, ok := r.dimByName[name]; ok {
		return i
	}
	return -1
}

// DimNames returns the names of all dimension attributes.
func (r *Relation) DimNames() []string {
	out := make([]string, len(r.dims))
	for i, d := range r.dims {
		out[i] = d.name
	}
	return out
}

// DimID returns the dictionary id of dimension dim at the given row.
func (r *Relation) DimID(dim, row int) uint32 { return r.dims[dim].ids[row] }

// DimValue returns the string value of dimension dim at the given row.
func (r *Relation) DimValue(dim, row int) string {
	d := r.dims[dim]
	return d.dict[d.ids[row]]
}

// NumMeasures returns the number of measure attributes.
func (r *Relation) NumMeasures() int { return len(r.measures) }

// Measure returns the i-th measure column.
func (r *Relation) Measure(i int) *MeasureColumn { return r.measures[i] }

// MeasureIndex returns the position of the named measure attribute, or -1.
func (r *Relation) MeasureIndex(name string) int {
	if i, ok := r.measureByName[name]; ok {
		return i
	}
	return -1
}

// MeasureNames returns the names of all measure attributes.
func (r *Relation) MeasureNames() []string {
	out := make([]string, len(r.measures))
	for i, m := range r.measures {
		out[i] = m.name
	}
	return out
}

// MeasureValue returns the value of measure m at the given row.
func (r *Relation) MeasureValue(m, row int) float64 { return r.measures[m].vals[row] }

// Builder incrementally assembles a Relation. Append rows with Append and
// call Finish once; the Builder must not be reused afterwards.
type Builder struct {
	name         string
	timeName     string
	dimNames     []string
	measureNames []string

	timeVals []string
	dims     [][]string
	measures [][]float64

	timeOrder []string // optional explicit ordering of time labels
	finished  bool
}

// NewBuilder returns a Builder for a relation with the given time
// dimension, categorical dimensions, and measures.
func NewBuilder(name, timeName string, dimNames, measureNames []string) *Builder {
	b := &Builder{
		name:         name,
		timeName:     timeName,
		dimNames:     append([]string(nil), dimNames...),
		measureNames: append([]string(nil), measureNames...),
	}
	b.dims = make([][]string, len(dimNames))
	b.measures = make([][]float64, len(measureNames))
	return b
}

// SetTimeOrder fixes the series order of time labels explicitly. Labels
// appended later that are missing from the ordering cause Finish to fail.
// Without an explicit order, labels are sorted lexicographically, which is
// correct for ISO dates and zero-padded numerals.
func (b *Builder) SetTimeOrder(labels []string) {
	b.timeOrder = append([]string(nil), labels...)
}

// Append adds one row. dims and measures must match the lengths declared
// in NewBuilder.
func (b *Builder) Append(timeVal string, dims []string, measures []float64) error {
	if len(dims) != len(b.dims) {
		return fmt.Errorf("relation: row has %d dimension values, want %d", len(dims), len(b.dims))
	}
	if len(measures) != len(b.measures) {
		return fmt.Errorf("relation: row has %d measure values, want %d", len(measures), len(b.measures))
	}
	b.timeVals = append(b.timeVals, timeVal)
	for i, v := range dims {
		b.dims[i] = append(b.dims[i], v)
	}
	for i, v := range measures {
		b.measures[i] = append(b.measures[i], v)
	}
	return nil
}

// Finish builds the Relation. It dictionary-encodes dimensions and
// resolves the time ordering.
func (b *Builder) Finish() (*Relation, error) {
	if b.finished {
		return nil, fmt.Errorf("relation: Builder.Finish called twice")
	}
	b.finished = true
	n := len(b.timeVals)

	r := &Relation{
		name:          b.name,
		numRows:       n,
		timeName:      b.timeName,
		dimByName:     make(map[string]int, len(b.dimNames)),
		measureByName: make(map[string]int, len(b.measureNames)),
	}

	// Resolve time labels and per-row time indexes.
	labelPos := make(map[string]int32)
	if b.timeOrder != nil {
		r.timeLabels = b.timeOrder
		for i, l := range b.timeOrder {
			if _, dup := labelPos[l]; dup {
				return nil, fmt.Errorf("relation: duplicate time label %q in explicit order", l)
			}
			labelPos[l] = int32(i)
		}
	} else {
		seen := make(map[string]bool)
		for _, v := range b.timeVals {
			if !seen[v] {
				seen[v] = true
				r.timeLabels = append(r.timeLabels, v)
			}
		}
		sort.Strings(r.timeLabels)
		for i, l := range r.timeLabels {
			labelPos[l] = int32(i)
		}
	}
	r.timePos = labelPos
	r.timeIdx = make([]int32, n)
	for i, v := range b.timeVals {
		pos, ok := labelPos[v]
		if !ok {
			return nil, fmt.Errorf("relation: time value %q not in explicit time order", v)
		}
		r.timeIdx[i] = pos
	}

	// Dictionary-encode dimensions.
	for di, name := range b.dimNames {
		if _, dup := r.dimByName[name]; dup {
			return nil, fmt.Errorf("relation: duplicate dimension name %q", name)
		}
		col := &DimColumn{
			name:  name,
			ids:   make([]uint32, n),
			index: make(map[string]uint32),
		}
		for ri, v := range b.dims[di] {
			id, ok := col.index[v]
			if !ok {
				id = uint32(len(col.dict))
				col.dict = append(col.dict, v)
				col.index[v] = id
			}
			col.ids[ri] = id
		}
		r.dimByName[name] = di
		r.dims = append(r.dims, col)
	}

	// Measures are stored as-is.
	for mi, name := range b.measureNames {
		if _, dup := r.measureByName[name]; dup {
			return nil, fmt.Errorf("relation: duplicate measure name %q", name)
		}
		r.measureByName[name] = mi
		r.measures = append(r.measures, &MeasureColumn{name: name, vals: b.measures[mi]})
	}
	return r, nil
}

// timePosition resolves a label to its series position, rebuilding the
// reverse index if the relation predates it (older construction paths).
func (r *Relation) timePosition(label string) (int32, bool) {
	if r.timePos == nil {
		r.timePos = make(map[string]int32, len(r.timeLabels))
		for i, l := range r.timeLabels {
			r.timePos[l] = int32(i)
		}
	}
	p, ok := r.timePos[label]
	return p, ok
}

// AppendRows extends the relation in place with rows at the tail of the
// series: every row's time label must resolve to the current last
// timestamp (late records revising the most recent point) or to a new
// label, which is appended to the series in first-appearance order. Rows
// are row-major: dims[i] and measures[i] belong to row i and must match
// the relation's dimension and measure counts. Dictionaries grow as new
// categorical values appear.
//
// Validation runs before any mutation, so a failed call leaves the
// relation unchanged. Earlier timestamps are immutable; a row that
// resolves before the last existing label is rejected, which is what lets
// the incremental engine trust that appended data never rewrites history.
// Rows may carry either the full dimension width or, when the relation has
// derived columns (hierarchy levels split from a path, range bins), just
// the base width — the derived values are then recomputed engine-side, so
// external writers never have to know about derived columns. Appended rows
// must also respect every declared hierarchy: a known child value cannot
// move to a different parent.
func (r *Relation) AppendRows(timeVals []string, dims [][]string, measures [][]float64) error {
	if len(dims) != len(timeVals) || len(measures) != len(timeVals) {
		return fmt.Errorf("relation: AppendRows got %d time values, %d dim rows, %d measure rows",
			len(timeVals), len(dims), len(measures))
	}
	wantDims := len(r.dims)
	if base := r.NumBaseDims(); base < wantDims && len(dims) > 0 && len(dims[0]) == base {
		wantDims = base
	}
	for i := range timeVals {
		if len(dims[i]) != wantDims {
			return fmt.Errorf("relation: row %d has %d dimension values, want %d", i, len(dims[i]), wantDims)
		}
		if len(measures[i]) != len(r.measures) {
			return fmt.Errorf("relation: row %d has %d measure values, want %d", i, len(measures[i]), len(r.measures))
		}
	}
	if wantDims < len(r.dims) {
		full, err := r.deriveRows(dims, measures)
		if err != nil {
			return err
		}
		dims = full
	}
	if len(r.hiers) > 0 {
		if err := r.validateHierarchyRows(dims); err != nil {
			return err
		}
	}
	// Resolve time labels without mutating: existing labels must be the
	// current last one; unseen labels are staged for appending.
	minPos := int32(len(r.timeLabels)) - 1
	if minPos < 0 {
		minPos = 0
	}
	staged := make(map[string]int32)
	var newLabels []string
	for i, l := range timeVals {
		pos, ok := r.timePosition(l)
		if !ok {
			pos, ok = staged[l]
			if !ok {
				pos = int32(len(r.timeLabels) + len(newLabels))
				staged[l] = pos
				newLabels = append(newLabels, l)
			}
		}
		if pos < minPos {
			return fmt.Errorf("relation: row %d appends at timestamp %q (position %d), before the last existing timestamp %q",
				i, l, pos, r.timeLabels[len(r.timeLabels)-1])
		}
	}

	// Mutate: labels, per-row time indexes, dictionaries, measures.
	fromRow := r.numRows
	for _, l := range newLabels {
		r.timePos[l] = int32(len(r.timeLabels))
		r.timeLabels = append(r.timeLabels, l)
	}
	for i := range timeVals {
		pos, _ := r.timePosition(timeVals[i])
		r.timeIdx = append(r.timeIdx, pos)
		for di, col := range r.dims {
			v := dims[i][di]
			id, ok := col.index[v]
			if !ok {
				id = uint32(len(col.dict))
				col.dict = append(col.dict, v)
				col.index[v] = id
			}
			col.ids = append(col.ids, id)
		}
		for mi, col := range r.measures {
			col.vals = append(col.vals, measures[i][mi])
		}
	}
	r.numRows += len(timeVals)
	if len(r.hiers) > 0 {
		r.growHierarchyParents(fromRow)
	}
	return nil
}

// RowsByTime indexes the relation's rows by series position: element t
// lists the row indexes whose time label is the t-th timestamp, in row
// order. Streaming drivers use it to replay a relation in time order.
func (r *Relation) RowsByTime() [][]int {
	out := make([][]int, r.NumTimestamps())
	for row := 0; row < r.numRows; row++ {
		t := r.timeIdx[row]
		out[t] = append(out[t], row)
	}
	return out
}

// RowBatch decodes the rows at time positions [from, to) into the
// row-major shape AppendRows consumes, using the index from RowsByTime.
// It is the replay primitive: feed a relation's tail (or a whole delta
// relation) into another relation's append path.
func (r *Relation) RowBatch(byTime [][]int, from, to int) (timeVals []string, dims [][]string, measures [][]float64) {
	for t := from; t < to; t++ {
		label := r.timeLabels[t]
		for _, row := range byTime[t] {
			timeVals = append(timeVals, label)
			dv := make([]string, len(r.dims))
			for d := range dv {
				dv[d] = r.DimValue(d, row)
			}
			mv := make([]float64, len(r.measures))
			for m := range mv {
				mv[m] = r.MeasureValue(m, row)
			}
			dims = append(dims, dv)
			measures = append(measures, mv)
		}
	}
	return timeVals, dims, measures
}

// DerivedBytes coarsely estimates the heap held by state that exists only
// because taxonomies or derived columns were declared on this relation:
// hierarchy parent maps, the derived columns' per-row ids and
// dictionaries, and the frozen range-bin edges. Base columns are excluded
// — they are the cost of loading the CSV at all — so callers can charge
// the marginal footprint of hierarchical/range-binned datasets against a
// memory budget without double-counting the base data per engine.
func (r *Relation) DerivedBytes() int64 {
	var b int64
	for _, h := range r.hiers {
		for _, p := range h.parents {
			b += 4 * int64(cap(p))
		}
	}
	for _, dc := range r.derived {
		col := r.dims[dc.dim]
		b += 4 * int64(cap(col.ids))
		for _, v := range col.dict {
			b += 16 + int64(len(v)) // string header + bytes
		}
		b += 48 * int64(len(col.index)) // map buckets + key strings, coarse
		b += 8 * int64(cap(dc.edges))
	}
	return b
}
