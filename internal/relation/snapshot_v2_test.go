package relation

import (
	"bytes"
	"math"
	"testing"
)

// bitsEqual compares SumCount slices bit for bit: NaN payloads, signed
// zeros, and subnormals must all survive the codec unchanged.
func bitsEqual(a, b []SumCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i].Sum) != math.Float64bits(b[i].Sum) ||
			math.Float64bits(a[i].Count) != math.Float64bits(b[i].Count) {
			return false
		}
	}
	return true
}

// trickyFloats is the adversarial value set every float codec path must
// round-trip bit-exactly.
var trickyFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 6.5, 1e-3, 123.456,
	1e15, -1e15, float64(1<<53 - 1), float64(1 << 53), float64(1<<53) + 2,
	math.MaxFloat64, math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.Inf(1), math.Inf(-1), math.NaN(), math.Float64frombits(0x7ff8dead_beef0001),
	1.0 / 3.0, math.Pi, 0.1, 0.07, 99.99, -42.25,
}

func TestDecimalF64RoundTrip(t *testing.T) {
	for _, v := range trickyFloats {
		var buf bytes.Buffer
		sw := NewSnapWriter(&buf)
		sw.DecimalF64(v)
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		if n := decimalF64Len(v); n != buf.Len() {
			t.Errorf("decimalF64Len(%v) = %d, encoded %d bytes", v, n, buf.Len())
		}
		for _, sr := range []*SnapReader{
			NewSnapReader(bytes.NewReader(buf.Bytes())),
			NewSnapReaderBytes(buf.Bytes()),
		} {
			got := sr.DecimalF64()
			if err := sr.Err(); err != nil {
				t.Fatalf("DecimalF64(%v): %v", v, err)
			}
			if math.Float64bits(got) != math.Float64bits(v) {
				t.Errorf("DecimalF64 round-trip %v -> %v (bits %x -> %x)",
					v, got, math.Float64bits(v), math.Float64bits(got))
			}
		}
	}
}

func TestF64ColumnRoundTrip(t *testing.T) {
	cols := [][]float64{
		{},
		{1, 2, 3, 4, 5},                     // integral
		{0.5, 1.5, 2.25, 100.75},            // decimal
		trickyFloats,                        // raw escape territory
		{1e18, -1e18, 42},                   // large integral
		{7.5, 7, -0.125, math.NaN(), 1e300}, // mixed decimal/escape
	}
	for ci, col := range cols {
		var buf bytes.Buffer
		sw := NewSnapWriter(&buf)
		sw.F64Column(col)
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		for _, sr := range []*SnapReader{
			NewSnapReader(bytes.NewReader(buf.Bytes())),
			NewSnapReaderBytes(buf.Bytes()),
		} {
			got := make([]float64, len(col))
			sr.F64ColumnInto(got)
			if err := sr.Err(); err != nil {
				t.Fatalf("col %d: %v", ci, err)
			}
			for i := range col {
				if math.Float64bits(got[i]) != math.Float64bits(col[i]) {
					t.Fatalf("col %d entry %d: %v -> %v", ci, i, col[i], got[i])
				}
			}
		}
	}
}

// sumCountCases enumerates series engineered to trigger every v2 series
// layout plus the edge values that must force raw fallbacks.
func sumCountCases() map[string][]SumCount {
	dense := make([]SumCount, 64)
	for i := range dense {
		dense[i] = SumCount{Sum: float64(i * 3), Count: float64(i % 7)}
	}
	sparseInt := make([]SumCount, 128)
	sparseInt[3] = SumCount{Sum: 42, Count: 2}
	sparseInt[90] = SumCount{Sum: -17, Count: 1}
	sparseDec := make([]SumCount, 128)
	sparseDec[10] = SumCount{Sum: 6.5, Count: 1}
	sparseDec[11] = SumCount{Sum: 123.25, Count: 3}
	sparseRawSum := make([]SumCount, 128)
	sparseRawSum[0] = SumCount{Sum: math.Pi, Count: 4}
	sparseRawSum[127] = SumCount{Sum: 1.0 / 3.0, Count: 9}
	sparseRaw := make([]SumCount, 64)
	sparseRaw[5] = SumCount{Sum: math.Pi, Count: 0.5}
	sparseRaw[6] = SumCount{Sum: math.NaN(), Count: -3}
	tricky := make([]SumCount, len(trickyFloats))
	for i, v := range trickyFloats {
		tricky[i] = SumCount{Sum: v, Count: trickyFloats[len(trickyFloats)-1-i]}
	}
	return map[string][]SumCount{
		"empty":        {},
		"allZero":      make([]SumCount, 32),
		"denseInt":     dense,
		"sparseInt":    sparseInt,
		"sparseDec":    sparseDec,
		"sparseRawSum": sparseRawSum,
		"sparseRaw":    sparseRaw,
		"tricky":       tricky,
		"negZeroSum":   {{Sum: math.Copysign(0, -1), Count: 0}, {}, {Sum: 1, Count: 1}},
		"negZeroCount": {{Sum: 0, Count: math.Copysign(0, -1)}, {}, {Sum: 2, Count: 2}},
		"negCount":     {{Sum: 3, Count: -2}, {}},
		"hugeInt":      {{Sum: float64(1<<53 - 1), Count: float64(1<<53 - 1)}, {}},
	}
}

func TestSumCountsV2RoundTrip(t *testing.T) {
	for name, s := range sumCountCases() {
		var buf bytes.Buffer
		sw := NewSnapWriter(&buf)
		sw.SumCountsV2(s)
		if err := sw.Flush(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, sr := range []*SnapReader{
			NewSnapReader(bytes.NewReader(buf.Bytes())),
			NewSnapReaderBytes(buf.Bytes()),
		} {
			got := make([]SumCount, len(s))
			// Pre-poison dst: sparse decoding must overwrite every cell.
			for i := range got {
				got[i] = SumCount{Sum: math.NaN(), Count: math.NaN()}
			}
			sr.SumCountsV2Into(got)
			if err := sr.Err(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !bitsEqual(s, got) {
				t.Fatalf("%s: series not bit-identical after round-trip", name)
			}
		}
	}
}

// TestSumCountsV2PicksCompactLayouts pins the cost model: sparse integral
// series must not fall back to raw, and decimal-heavy sparse series must
// beat the 16-byte raw pairs.
func TestSumCountsV2PicksCompactLayouts(t *testing.T) {
	cases := sumCountCases()
	for _, name := range []string{"sparseInt", "sparseDec", "denseInt"} {
		s := cases[name]
		var buf bytes.Buffer
		sw := NewSnapWriter(&buf)
		sw.SumCountsV2(s)
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		if raw := 16 * len(s); buf.Len() >= raw/2 {
			t.Errorf("%s: %d bytes for %d raw (layout %d) — compact layout not chosen",
				name, buf.Len(), raw, buf.Bytes()[0])
		}
	}
}

func TestSumCountsV2RejectsCorrupt(t *testing.T) {
	s := sumCountCases()["sparseInt"]
	var buf bytes.Buffer
	sw := NewSnapWriter(&buf)
	sw.SumCountsV2(s)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Unknown layout tag.
	bad := append([]byte(nil), full...)
	bad[0] = 0xEE
	sr := NewSnapReaderBytes(bad)
	sr.SumCountsV2Into(make([]SumCount, len(s)))
	if sr.Err() == nil {
		t.Fatal("unknown layout tag decoded without error")
	}

	// Entry count exceeding the series length.
	bad = append([]byte(nil), full[:1]...)
	bad = append(bad, 0xFF, 0xFF, 0x7F) // nnz ≫ len(dst)
	sr = NewSnapReaderBytes(bad)
	sr.SumCountsV2Into(make([]SumCount, len(s)))
	if sr.Err() == nil {
		t.Fatal("oversized sparse entry count decoded without error")
	}

	// Gap walking past the end of the series.
	bad = append([]byte(nil), full[0], 2, 0xFF, 0x7F)
	sr = NewSnapReaderBytes(bad)
	sr.SumCountsV2Into(make([]SumCount, len(s)))
	if sr.Err() == nil {
		t.Fatal("out-of-range sparse gap decoded without error")
	}

	// Every strict prefix errors, never panics.
	for cut := 0; cut < len(full); cut++ {
		sr := NewSnapReaderBytes(full[:cut])
		sr.SumCountsV2Into(make([]SumCount, len(s)))
		if sr.Err() == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(full))
		}
	}
}

// TestSnapshotV1CrossRestore guards the compatibility promise: a relation
// section written by the legacy fixed-width v1 encoder must decode with
// the current reader, ids and values intact.
func TestSnapshotV1CrossRestore(t *testing.T) {
	r := snapTestRelation(t)
	var buf bytes.Buffer
	sw := NewSnapWriter(&buf)
	r.EncodeSnapshotV1(sw)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, r, got)

	// And the v1 payload must also decode through the byte-slice reader.
	sr := NewSnapReaderBytes(buf.Bytes())
	got2 := DecodeSnapshot(sr)
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, r, got2)
}

// TestSnapshotV2SmallerThanV1 pins the reason v2 exists: on the
// dictionary-encoded test relation the varint+delta encoding must beat
// the fixed-width layout.
func TestSnapshotV2SmallerThanV1(t *testing.T) {
	r := snapTestRelation(t)
	var v1, v2 bytes.Buffer
	sw := NewSnapWriter(&v1)
	r.EncodeSnapshotV1(sw)
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("v2 snapshot (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), v1.Len())
	}
}

// TestSnapReaderBytesMatchesStream decodes one snapshot through both
// reader backends and requires identical results — the byte-slice fast
// path must be a pure optimization.
func TestSnapReaderBytesMatchesStream(t *testing.T) {
	r := snapTestRelation(t)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sr := NewSnapReaderBytes(buf.Bytes())
	b := DecodeSnapshot(sr)
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, a, b)
}

// FuzzSnapshotColumn throws arbitrary bytes at the varint/delta column
// decoders — the attack surface a corrupt snapshot reaches after the
// container checksum is forged. Decoders must error or succeed, never
// panic, hang, or over-allocate.
func FuzzSnapshotColumn(f *testing.F) {
	for _, s := range sumCountCases() {
		var buf bytes.Buffer
		sw := NewSnapWriter(&buf)
		sw.SumCountsV2(s)
		sw.Flush()
		f.Add(buf.Bytes())
	}
	for _, col := range [][]float64{{1, 2, 3}, {0.5, 6.25}, trickyFloats} {
		var buf bytes.Buffer
		sw := NewSnapWriter(&buf)
		sw.F64Column(col)
		sw.Flush()
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mk := range []func() *SnapReader{
			func() *SnapReader { return NewSnapReaderBytes(data) },
			func() *SnapReader { return NewSnapReader(bytes.NewReader(data)) },
		} {
			sr := mk()
			sr.SumCountsV2Into(make([]SumCount, 96))
			sr = mk()
			sr.F64ColumnInto(make([]float64, 96))
			sr = mk()
			sr.DecimalF64()
			sr = mk()
			sr.Uvarint()
			sr.Varint()
		}
	})
}
