package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Pred is a single equality predicate Attr=value over a dimension
// attribute, with the value dictionary-encoded against a specific
// Relation's column.
type Pred struct {
	Dim   int    // dimension index within the relation
	Value uint32 // dictionary id within that dimension
}

// Conjunction is a set of predicates over distinct dimensions, i.e. an
// explanation's data-slice selector (Definition 3.1). Predicates are kept
// sorted by dimension index so conjunctions have a canonical form.
type Conjunction []Pred

// NewConjunction builds a canonical Conjunction from attribute=value pairs
// resolved against r. It fails when an attribute is unknown, a value never
// occurs, or the same attribute appears twice.
func NewConjunction(r *Relation, pairs map[string]string) (Conjunction, error) {
	c := make(Conjunction, 0, len(pairs))
	//tsexplain:unordered canonicalized by normalize() below
	for attr, val := range pairs {
		di := r.DimIndex(attr)
		if di < 0 {
			return nil, fmt.Errorf("relation: unknown dimension %q", attr)
		}
		id, ok := r.Dim(di).ID(val)
		if !ok {
			return nil, fmt.Errorf("relation: value %q never occurs in dimension %q", val, attr)
		}
		c = append(c, Pred{Dim: di, Value: id})
	}
	c.normalize()
	return c, nil
}

// normalize sorts predicates by dimension index.
func (c Conjunction) normalize() {
	sort.Slice(c, func(i, j int) bool { return c[i].Dim < c[j].Dim })
}

// Order returns the number of predicates in the conjunction (β in the
// paper's notation).
func (c Conjunction) Order() int { return len(c) }

// Matches reports whether the given row of r satisfies every predicate.
func (c Conjunction) Matches(r *Relation, row int) bool {
	for _, p := range c {
		if r.DimID(p.Dim, row) != p.Value {
			return false
		}
	}
	return true
}

// HasDim reports whether the conjunction constrains dimension dim.
func (c Conjunction) HasDim(dim int) bool {
	for _, p := range c {
		if p.Dim == dim {
			return true
		}
	}
	return false
}

// ValueFor returns the dictionary id the conjunction pins dimension dim
// to. ok is false when dim is unconstrained.
func (c Conjunction) ValueFor(dim int) (id uint32, ok bool) {
	for _, p := range c {
		if p.Dim == dim {
			return p.Value, true
		}
	}
	return 0, false
}

// Extend returns a new canonical Conjunction with an extra predicate. It
// panics if the dimension is already constrained; callers are expected to
// check HasDim first.
func (c Conjunction) Extend(p Pred) Conjunction {
	if c.HasDim(p.Dim) {
		panic(fmt.Sprintf("relation: dimension %d already constrained", p.Dim))
	}
	out := make(Conjunction, 0, len(c)+1)
	out = append(out, c...)
	out = append(out, p)
	out.normalize()
	return out
}

// Without returns a new Conjunction with the predicate over dimension dim
// removed. Removing an unconstrained dimension returns an equal copy.
func (c Conjunction) Without(dim int) Conjunction {
	out := make(Conjunction, 0, len(c))
	for _, p := range c {
		if p.Dim != dim {
			out = append(out, p)
		}
	}
	return out
}

// Key returns a canonical map key for the conjunction, unique within one
// Relation.
func (c Conjunction) Key() string {
	var sb strings.Builder
	for i, p := range c {
		if i > 0 {
			sb.WriteByte('&')
		}
		fmt.Fprintf(&sb, "%d=%d", p.Dim, p.Value)
	}
	return sb.String()
}

// String renders the conjunction with attribute and value names resolved
// against r, e.g. "state=NY & age>50" style "state=NY&county=Kings".
func (c Conjunction) String(r *Relation) string {
	if len(c) == 0 {
		return "(all)"
	}
	var sb strings.Builder
	for i, p := range c {
		if i > 0 {
			sb.WriteString(" & ")
		}
		sb.WriteString(r.Dim(p.Dim).Name())
		sb.WriteByte('=')
		sb.WriteString(r.Dim(p.Dim).Value(p.Value))
	}
	return sb.String()
}

// Overlaps reports whether two conjunctions can select a common record in
// some relation: they overlap unless they pin the same dimension to
// different values. This is the non-overlap test of Definition 3.4
// (σ_E1 R ∩ σ_E2 R = ∅ for every R exactly when they disagree on a shared
// dimension).
func (c Conjunction) Overlaps(other Conjunction) bool {
	i, j := 0, 0
	for i < len(c) && j < len(other) {
		switch {
		case c[i].Dim < other[j].Dim:
			i++
		case c[i].Dim > other[j].Dim:
			j++
		default:
			if c[i].Value != other[j].Value {
				return false
			}
			i++
			j++
		}
	}
	return true
}

// Filter returns a new Relation containing only the rows of r that satisfy
// the conjunction (the OLAP slice/dice operation). Dimension dictionaries
// are rebuilt so downstream candidate enumeration sees only surviving
// values.
func Filter(r *Relation, c Conjunction) (*Relation, error) {
	b := NewBuilder(r.Name(), r.TimeName(), r.DimNames(), r.MeasureNames())
	b.SetTimeOrder(r.TimeLabels())
	dims := make([]string, r.NumDims())
	meas := make([]float64, r.NumMeasures())
	for row := 0; row < r.NumRows(); row++ {
		if !c.Matches(r, row) {
			continue
		}
		for d := range dims {
			dims[d] = r.DimValue(d, row)
		}
		for m := range meas {
			meas[m] = r.MeasureValue(m, row)
		}
		if err := b.Append(r.TimeLabel(r.TimeIndex(row)), dims, meas); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}
