package relation

import "fmt"

// AggFunc identifies a decomposable aggregate function f(M) applied to a
// measure attribute. All three supported aggregates decompose into
// (sum, count) pairs, which is what lets the engine derive
// f(R − σ_E R) from f(R) and f(σ_E R) in O(1) (Section 5.2).
type AggFunc int

const (
	// Sum aggregates with SUM(M).
	Sum AggFunc = iota
	// Count aggregates with COUNT(M) (row count; the measure is ignored).
	Count
	// Avg aggregates with AVG(M).
	Avg
)

// String returns the SQL spelling of the aggregate.
func (f AggFunc) String() string {
	switch f {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// ParseAggFunc parses "SUM", "COUNT", or "AVG" (case-sensitive SQL
// spelling).
func ParseAggFunc(s string) (AggFunc, error) {
	switch s {
	case "SUM":
		return Sum, nil
	case "COUNT":
		return Count, nil
	case "AVG":
		return Avg, nil
	default:
		return 0, fmt.Errorf("relation: unknown aggregate function %q", s)
	}
}

// Eval computes the aggregate value from a (sum, count) pair. For Avg of
// an empty slice the result is 0 rather than NaN so that series over
// sparse slices stay finite.
func (f AggFunc) Eval(sum float64, count float64) float64 {
	switch f {
	case Sum:
		return sum
	case Count:
		return count
	case Avg:
		if count == 0 {
			return 0
		}
		return sum / count
	default:
		panic("relation: invalid AggFunc")
	}
}

// SumCount holds the decomposed state of an aggregate at one timestamp.
type SumCount struct {
	Sum   float64
	Count float64
}

// Sub returns the element-wise difference s − o, i.e. the state of the
// aggregate after removing the records o accounts for.
func (s SumCount) Sub(o SumCount) SumCount {
	return SumCount{Sum: s.Sum - o.Sum, Count: s.Count - o.Count}
}

// AggregateSeries computes the decomposed per-timestamp aggregate state of
// measure m over all rows: the result has NumTimestamps entries.
func (r *Relation) AggregateSeries(m int) []SumCount {
	out := make([]SumCount, r.NumTimestamps())
	vals := r.measures[m].vals
	for row := 0; row < r.numRows; row++ {
		t := r.timeIdx[row]
		out[t].Sum += vals[row]
		out[t].Count++
	}
	return out
}

// AggregateSeriesWhere computes the decomposed per-timestamp aggregate
// state of measure m over rows matching the conjunction (the slice
// σ_E R aggregated by time).
func (r *Relation) AggregateSeriesWhere(m int, c Conjunction) []SumCount {
	out := make([]SumCount, r.NumTimestamps())
	vals := r.measures[m].vals
	for row := 0; row < r.numRows; row++ {
		if !c.Matches(r, row) {
			continue
		}
		t := r.timeIdx[row]
		out[t].Sum += vals[row]
		out[t].Count++
	}
	return out
}

// Values evaluates the aggregate function over a decomposed series,
// producing the aggregated time series values p_i.v of Definition 3.6.
func Values(f AggFunc, sc []SumCount) []float64 {
	out := make([]float64, len(sc))
	for i, s := range sc {
		out[i] = f.Eval(s.Sum, s.Count)
	}
	return out
}

// GroupBySeries computes, for every distinct combination of the given
// dimensions that occurs in r, the decomposed per-timestamp aggregate of
// measure m. Keys are dictionary-id tuples encoded with groupKey. It is
// the core group-by kernel used by candidate enumeration.
func (r *Relation) GroupBySeries(dims []int, m int) map[string][]SumCount {
	out := make(map[string][]SumCount)
	vals := r.measures[m].vals
	T := r.NumTimestamps()
	ids := make([]uint32, len(dims))
	buf := make([]byte, 0, len(dims)*8)
	for row := 0; row < r.numRows; row++ {
		for i, d := range dims {
			ids[i] = r.DimID(d, row)
		}
		// out[string(buf)] compiles to a map lookup without materializing
		// the string, so the steady state (key already present) does not
		// allocate; only the first row of each distinct group pays for the
		// key string and the series.
		buf = appendGroupKey(buf[:0], dims, ids)
		sc, ok := out[string(buf)]
		if !ok {
			sc = make([]SumCount, T)
			out[string(buf)] = sc
		}
		t := r.timeIdx[row]
		sc[t].Sum += vals[row]
		sc[t].Count++
	}
	return out
}

// groupKey encodes a (dims, ids) tuple as a compact byte-string key.
func groupKey(dims []int, ids []uint32) string {
	return string(appendGroupKey(make([]byte, 0, len(dims)*8), dims, ids))
}

// appendGroupKey appends the groupKey encoding of (dims, ids) to buf and
// returns the extended slice. Callers that reuse buf avoid allocating on
// every encode.
func appendGroupKey(buf []byte, dims []int, ids []uint32) []byte {
	for i := range dims {
		d, v := dims[i], ids[i]
		buf = append(buf,
			byte(d), byte(d>>8),
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// DecodeGroupKey decodes a key produced by groupKey back into parallel
// dimension-index and dictionary-id slices.
func DecodeGroupKey(key string) (dims []int, ids []uint32) {
	b := []byte(key)
	for i := 0; i+6 <= len(b); i += 6 {
		dims = append(dims, int(b[i])|int(b[i+1])<<8)
		ids = append(ids, uint32(b[i+2])|uint32(b[i+3])<<8|uint32(b[i+4])<<16|uint32(b[i+5])<<24)
	}
	return dims, ids
}
