package relation

import (
	"math"
	"math/rand"
	"testing"
)

// checkEdges asserts the EquiDepthEdges invariants for any input: edges
// strictly increasing, all finite, and every finite value assignable to
// exactly one bin in [0, len(edges)].
func checkEdges(t *testing.T, vals []float64, bins int, edges []float64) {
	t.Helper()
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			t.Fatalf("edges not strictly increasing at %d: %v", i, edges)
		}
	}
	for _, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("non-finite edge in %v", edges)
		}
	}
	if len(edges) > bins-1 {
		t.Fatalf("%d edges for %d bins", len(edges), bins)
	}
	for _, v := range vals {
		b := AssignBin(edges, v)
		if math.IsNaN(v) {
			if b != -1 {
				t.Fatalf("NaN assigned to bin %d", b)
			}
			continue
		}
		if b < 0 || b > len(edges) {
			t.Fatalf("value %v assigned to out-of-range bin %d", v, b)
		}
		// Bin membership is consistent with the edge definition:
		// bin b holds values in [edges[b-1], edges[b]).
		if b > 0 && v < edges[b-1] {
			t.Fatalf("value %v in bin %d but below edge %v", v, b, edges[b-1])
		}
		if b < len(edges) && v >= edges[b] {
			t.Fatalf("value %v in bin %d but ≥ edge %v", v, b, edges[b])
		}
	}
}

func TestEquiDepthEdgesUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	for _, bins := range []int{2, 4, 8, 16} {
		edges := EquiDepthEdges(vals, bins)
		checkEdges(t, vals, bins, edges)
		if len(edges) != bins-1 {
			t.Fatalf("uniform data with %d bins got %d edges", bins, len(edges))
		}
		// Equi-depth: with 10k distinct-ish draws, each bin holds n/bins ±1%.
		counts := make([]int, bins)
		for _, v := range vals {
			counts[AssignBin(edges, v)]++
		}
		want := len(vals) / bins
		for b, c := range counts {
			if c < want-want/10 || c > want+want/10 {
				t.Fatalf("bin %d holds %d values, want ≈%d: %v", b, c, want, counts)
			}
		}
	}
}

func TestEquiDepthEdgesDuplicateHeavy(t *testing.T) {
	// 90% of the mass is a single value; split refinement must slide edges
	// past the duplicate run rather than emit non-increasing edges.
	vals := make([]float64, 1000)
	for i := range vals {
		if i < 900 {
			vals[i] = 5
		} else {
			vals[i] = float64(i)
		}
	}
	edges := EquiDepthEdges(vals, 8)
	checkEdges(t, vals, 8, edges)
	if len(edges) == 0 {
		t.Fatal("no edges for duplicate-heavy data with 101 distinct values")
	}
}

func TestEquiDepthEdgesDegenerate(t *testing.T) {
	if e := EquiDepthEdges(nil, 4); len(e) != 0 {
		t.Fatalf("edges for empty input: %v", e)
	}
	if e := EquiDepthEdges([]float64{3, 3, 3}, 4); len(e) != 0 {
		t.Fatalf("edges for constant input: %v", e)
	}
	nan := math.NaN()
	if e := EquiDepthEdges([]float64{nan, nan}, 4); len(e) != 0 {
		t.Fatalf("edges for all-NaN input: %v", e)
	}
	inf := math.Inf(1)
	e := EquiDepthEdges([]float64{1, 2, inf, inf, inf, -inf}, 3)
	checkEdges(t, []float64{1, 2, inf, -inf}, 3, e)
}

func TestAssignBinBoundaries(t *testing.T) {
	edges := []float64{10, 20, 30}
	cases := []struct {
		v    float64
		want int
	}{
		{math.Inf(-1), 0}, {9.999, 0}, {10, 1}, {15, 1},
		{20, 2}, {29.999, 2}, {30, 3}, {math.Inf(1), 3},
		{math.NaN(), -1},
	}
	for _, c := range cases {
		if got := AssignBin(edges, c.v); got != c.want {
			t.Fatalf("AssignBin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBinLabel(t *testing.T) {
	edges := []float64{10, 20}
	if got := BinLabel(edges, -1); got != "NaN" {
		t.Fatalf("NaN label = %q", got)
	}
	if got := BinLabel(edges, 0); got != "[-inf,10)" {
		t.Fatalf("first label = %q", got)
	}
	if got := BinLabel(edges, 1); got != "[10,20)" {
		t.Fatalf("middle label = %q", got)
	}
	if got := BinLabel(edges, 2); got != "[20,+inf)" {
		t.Fatalf("last label = %q", got)
	}
}

func TestAddRangeBin(t *testing.T) {
	r := taxRelation(t)
	if err := r.AddRangeBin("sales_bin", "sales", 3); err != nil {
		t.Fatal(err)
	}
	d := r.DimIndex("sales_bin")
	if d < 0 || d < r.NumBaseDims() {
		t.Fatalf("sales_bin not a derived dimension (idx %d, base %d)", d, r.NumBaseDims())
	}
	edges, ok := r.RangeBinEdges("sales_bin")
	if !ok {
		t.Fatal("no edges recorded")
	}
	// Every row's label matches its measure's bin.
	m := r.MeasureIndex("sales")
	for row := 0; row < r.NumRows(); row++ {
		want := BinLabel(edges, AssignBin(edges, r.MeasureValue(m, row)))
		if got := r.DimValue(d, row); got != want {
			t.Fatalf("row %d label %q, want %q", row, got, want)
		}
	}
	// Collisions and bad bin counts are rejected.
	if err := r.AddRangeBin("state", "sales", 3); err == nil {
		t.Fatal("column collision accepted")
	}
	if err := r.AddRangeBin("b2", "sales", 1); err == nil {
		t.Fatal("bins=1 accepted")
	}
	if err := r.AddRangeBin("b2", "nope", 3); err == nil {
		t.Fatal("unknown measure accepted")
	}
}

func FuzzRangeBinEdges(f *testing.F) {
	f.Add(int64(1), uint8(100), uint8(8))
	f.Add(int64(2), uint8(3), uint8(2))
	f.Add(int64(3), uint8(255), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, n, binsRaw uint8) {
		bins := 2 + int(binsRaw)%15
		rng := rand.New(rand.NewSource(seed))
		vals := make([]float64, int(n))
		for i := range vals {
			switch rng.Intn(10) {
			case 0:
				vals[i] = math.NaN()
			case 1:
				vals[i] = math.Inf(1 - 2*rng.Intn(2))
			case 2, 3, 4:
				vals[i] = float64(rng.Intn(4)) // duplicate-heavy
			default:
				vals[i] = rng.NormFloat64() * 1e3
			}
		}
		edges := EquiDepthEdges(vals, bins)
		checkEdges(t, vals, bins, edges)
		// Determinism: same input, same edges.
		again := EquiDepthEdges(vals, bins)
		if len(again) != len(edges) {
			t.Fatalf("non-deterministic edge count %d vs %d", len(again), len(edges))
		}
		for i := range edges {
			if edges[i] != again[i] {
				t.Fatalf("non-deterministic edge %d", i)
			}
		}
	})
}
