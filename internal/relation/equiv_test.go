package relation_test

// Dataset-scale equivalence: the columnar integer-keyed kernel and the
// legacy string-keyed GroupBySeries must produce identical groups and
// identical series on the synth corpus and the liquor dataset, for every
// explain-by subset the engine enumerates.

import (
	"testing"

	"repro/internal/datasets"
	"repro/internal/relation"
	"repro/internal/synth"
)

func checkKernelEquivalence(t *testing.T, name string, r *relation.Relation, dims []int) {
	t.Helper()
	legacy := r.GroupBySeries(dims, 0)
	col := r.GroupBySeriesColumnar(dims, 0)
	if got, want := col.NumGroups(), len(legacy); got != want {
		t.Fatalf("%s dims %v: columnar %d groups, legacy %d", name, dims, got, want)
	}
	for g := 0; g < col.NumGroups(); g++ {
		ids := col.GroupIDs(g)
		// Rebuild the legacy key from the columnar group's id tuple.
		key := make([]byte, 0, len(dims)*6)
		for i := range dims {
			d, v := dims[i], ids[i]
			key = append(key,
				byte(d), byte(d>>8),
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		want, ok := legacy[string(key)]
		if !ok {
			t.Fatalf("%s dims %v: columnar group %v not found by legacy kernel", name, dims, ids)
		}
		got := col.Series(g)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s dims %v group %v t=%d: columnar %+v, legacy %+v",
					name, dims, ids, i, got[i], want[i])
			}
		}
	}
}

// explainBySubsets enumerates the non-empty dimension subsets of size
// ≤ maxOrder, mirroring the engine's candidate enumeration.
func explainBySubsets(numDims, maxOrder int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == maxOrder {
			return
		}
		for i := start; i < numDims; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

func TestKernelEquivalenceSynth(t *testing.T) {
	d, err := synth.Generate(synth.Params{Seed: 11, SNRdB: 30, N: 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, dims := range explainBySubsets(d.Rel.NumDims(), 3) {
		checkKernelEquivalence(t, "synth", d.Rel, dims)
	}
}

func TestKernelEquivalenceLiquor(t *testing.T) {
	if testing.Short() {
		t.Skip("liquor dataset generation is slow")
	}
	d := datasets.Liquor()
	for _, dims := range explainBySubsets(d.Rel.NumDims(), d.MaxOrder) {
		checkKernelEquivalence(t, "liquor", d.Rel, dims)
	}
}
