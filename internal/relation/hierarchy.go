package relation

import (
	"fmt"
	"strings"
)

// This file makes taxonomies first-class relation metadata. A Hierarchy
// declares that an ordered list of existing dimension columns refines
// coarse-to-fine (state → county, category → subcategory → leaf) and
// materializes, per adjacent level pair, the child-value → parent-value
// dictionary mapping. Declaration validates the single-parent invariant —
// every distinct value at level l occurs under exactly one value at level
// l−1 — which is what later lets the explain layer treat sibling slices
// as disjoint and a parent's slice as the union of its children's.
//
// Hierarchies either reference columns already present (DeclareHierarchy)
// or are derived from one path-delimited column ("electronics/audio/iem")
// whose segments become new level columns (DeriveHierarchyFromPath).

// Hierarchy is a validated taxonomy over dimension columns: dims[0] is the
// coarsest level, dims[len-1] the finest, and parents[l] maps each level-l
// dictionary id to its level-(l−1) parent dictionary id.
type Hierarchy struct {
	name    string
	dims    []int      // relation dim indexes, coarse → fine
	parents [][]uint32 // parents[l][childID] = parent dict id; parents[0] is nil
}

// Name returns the hierarchy's name.
func (h *Hierarchy) Name() string { return h.name }

// NumLevels returns the number of levels (≥ 2).
func (h *Hierarchy) NumLevels() int { return len(h.dims) }

// LevelDim returns the relation dimension index of level l (0 = coarsest).
func (h *Hierarchy) LevelDim(l int) int { return h.dims[l] }

// ParentID maps a level-l dictionary id to its parent's dictionary id at
// level l−1. l must be ≥ 1.
func (h *Hierarchy) ParentID(l int, id uint32) uint32 { return h.parents[l][id] }

// noParent marks a dictionary id whose parent has not been recorded yet
// (dictionaries never grow near 2^32 entries).
const noParent = ^uint32(0)

// NewHierarchy validates levels as a taxonomy over r without attaching it:
// every level must name a distinct existing dimension, and every distinct
// value at each level must occur under exactly one value of the level
// above it across all rows. The returned Hierarchy shares r's dictionaries
// but is not registered on r — use DeclareHierarchy for that.
func NewHierarchy(r *Relation, name string, levels []string) (*Hierarchy, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: hierarchy needs a name")
	}
	if len(levels) < 2 {
		return nil, fmt.Errorf("relation: hierarchy %q needs at least 2 levels, got %d", name, len(levels))
	}
	h := &Hierarchy{name: name, parents: make([][]uint32, len(levels))}
	seen := make(map[int]bool, len(levels))
	for _, lv := range levels {
		d := r.DimIndex(lv)
		if d < 0 {
			return nil, fmt.Errorf("relation: hierarchy %q level %q is not a dimension", name, lv)
		}
		if seen[d] {
			return nil, fmt.Errorf("relation: hierarchy %q repeats level %q", name, lv)
		}
		seen[d] = true
		h.dims = append(h.dims, d)
	}
	for l := 1; l < len(h.dims); l++ {
		child, parent := r.dims[h.dims[l]], r.dims[h.dims[l-1]]
		pm := make([]uint32, len(child.dict))
		for i := range pm {
			pm[i] = noParent
		}
		for row := 0; row < r.numRows; row++ {
			c, p := child.ids[row], parent.ids[row]
			if pm[c] == noParent {
				pm[c] = p
			} else if pm[c] != p {
				return nil, fmt.Errorf("relation: hierarchy %q: value %q of level %q occurs under both %q and %q of level %q",
					name, child.dict[c], child.name, parent.dict[pm[c]], parent.dict[p], parent.name)
			}
		}
		h.parents[l] = pm
	}
	return h, nil
}

// DeclareHierarchy validates levels (see NewHierarchy) and registers the
// hierarchy on the relation, so it is carried by snapshots and picked up
// by every universe built over r. A dimension may belong to at most one
// hierarchy.
func (r *Relation) DeclareHierarchy(name string, levels []string) error {
	h, err := NewHierarchy(r, name, levels)
	if err != nil {
		return err
	}
	return r.attachHierarchy(h)
}

// attachHierarchy registers a validated hierarchy, rejecting name and
// dimension overlap with already-declared ones.
func (r *Relation) attachHierarchy(h *Hierarchy) error {
	for _, prev := range r.hiers {
		if prev.name == h.name {
			return fmt.Errorf("relation: hierarchy %q already declared", h.name)
		}
		for _, d := range prev.dims {
			for _, nd := range h.dims {
				if d == nd {
					return fmt.Errorf("relation: dimension %q is in hierarchies %q and %q",
						r.dims[d].name, prev.name, h.name)
				}
			}
		}
	}
	r.hiers = append(r.hiers, h)
	return nil
}

// Hierarchies returns the declared hierarchies (shared, do not mutate).
func (r *Relation) Hierarchies() []*Hierarchy { return r.hiers }

// HierarchyNamed returns the declared hierarchy with the given name.
func (r *Relation) HierarchyNamed(name string) *Hierarchy {
	for _, h := range r.hiers {
		if h.name == name {
			return h
		}
	}
	return nil
}

// DeriveHierarchyFromPath splits a path-delimited dimension column
// ("electronics/audio/iem") into len(levels) new level columns named by
// levels, appends them to the relation, and declares the hierarchy over
// them. Every value of srcDim must split into exactly len(levels)
// non-empty segments. Level values are the raw segments, so they must be
// globally unique across parents for the single-parent validation to pass
// (qualify them in the source data when they are not). On error the
// relation is unchanged.
func (r *Relation) DeriveHierarchyFromPath(name, srcDim, delim string, levels []string) error {
	src := r.DimIndex(srcDim)
	if src < 0 {
		return fmt.Errorf("relation: unknown path column %q", srcDim)
	}
	if delim == "" {
		return fmt.Errorf("relation: hierarchy %q needs a non-empty path delimiter", name)
	}
	if len(levels) < 2 {
		return fmt.Errorf("relation: hierarchy %q needs at least 2 levels, got %d", name, len(levels))
	}
	for _, lv := range levels {
		if lv == "" {
			return fmt.Errorf("relation: hierarchy %q has an empty level name", name)
		}
		if lv == srcDim {
			return fmt.Errorf("relation: hierarchy %q level %q is its own path column", name, lv)
		}
		if r.DimIndex(lv) >= 0 || r.MeasureIndex(lv) >= 0 || lv == r.timeName {
			return fmt.Errorf("relation: hierarchy %q level %q collides with an existing column", name, lv)
		}
	}
	// Split once per distinct source value, not per row.
	srcCol := r.dims[src]
	parts := make([][]string, len(srcCol.dict))
	for i, v := range srcCol.dict {
		p := strings.Split(v, delim)
		if len(p) != len(levels) {
			return fmt.Errorf("relation: path value %q has %d segment(s), hierarchy %q wants %d",
				v, len(p), name, len(levels))
		}
		for _, seg := range p {
			if seg == "" {
				return fmt.Errorf("relation: path value %q has an empty segment", v)
			}
		}
		parts[i] = p
	}
	// Materialize the level columns (first-appearance dictionary order,
	// like every other construction path) without touching r yet.
	cols := make([]*DimColumn, len(levels))
	for l := range levels {
		col := &DimColumn{
			name:  levels[l],
			ids:   make([]uint32, r.numRows),
			index: make(map[string]uint32),
		}
		for row := 0; row < r.numRows; row++ {
			v := parts[srcCol.ids[row]][l]
			id, ok := col.index[v]
			if !ok {
				id = uint32(len(col.dict))
				col.dict = append(col.dict, v)
				col.index[v] = id
			}
			col.ids[row] = id
		}
		cols[l] = col
	}
	// Validate the taxonomy on the per-value split table before attaching
	// anything: same single-parent check NewHierarchy runs on rows, but
	// over distinct source values.
	h := &Hierarchy{name: name, parents: make([][]uint32, len(levels))}
	for l := 1; l < len(levels); l++ {
		pm := make([]uint32, len(cols[l].dict))
		for i := range pm {
			pm[i] = noParent
		}
		for _, p := range parts {
			c := cols[l].index[p[l]]
			pid := cols[l-1].index[p[l-1]]
			if pm[c] == noParent {
				pm[c] = pid
			} else if pm[c] != pid {
				return fmt.Errorf("relation: hierarchy %q: segment %q of level %q occurs under both %q and %q",
					name, p[l], levels[l], cols[l-1].dict[pm[c]], p[l-1])
			}
		}
		h.parents[l] = pm
	}
	// Attach: columns, derivation records, hierarchy — all or nothing.
	firstDim := len(r.dims)
	for l, col := range cols {
		h.dims = append(h.dims, firstDim+l)
		r.dimByName[col.name] = firstDim + l
		r.dims = append(r.dims, col)
		r.derived = append(r.derived, derivedCol{
			dim: firstDim + l, kind: derivedPathLevel, source: src,
			level: l, nparts: len(levels), delim: delim,
		})
	}
	if err := r.attachHierarchy(h); err != nil {
		// Roll the columns back; the relation must stay unchanged.
		for _, col := range cols {
			delete(r.dimByName, col.name)
		}
		r.dims = r.dims[:firstDim]
		r.derived = r.derived[:len(r.derived)-len(cols)]
		return err
	}
	return nil
}

// growHierarchyParents extends every hierarchy's parent maps over
// dictionary entries introduced since the given row watermark. Callers
// must have pre-validated consistency (see validateHierarchyRows); this
// only records first-seen parents.
func (r *Relation) growHierarchyParents(fromRow int) {
	for _, h := range r.hiers {
		for l := 1; l < len(h.dims); l++ {
			child, parent := r.dims[h.dims[l]], r.dims[h.dims[l-1]]
			pm := h.parents[l]
			for len(pm) < len(child.dict) {
				pm = append(pm, noParent)
			}
			for row := fromRow; row < r.numRows; row++ {
				c := child.ids[row]
				if pm[c] == noParent {
					pm[c] = parent.ids[row]
				}
			}
			h.parents[l] = pm
		}
	}
}

// validateHierarchyRows checks that full-width appended dimension rows
// respect every declared hierarchy before any mutation: a child value
// already in the dictionary must keep its recorded parent, and a value
// seen multiple times within the batch must be consistent across the
// batch.
func (r *Relation) validateHierarchyRows(dims [][]string) error {
	for _, h := range r.hiers {
		for l := 1; l < len(h.dims); l++ {
			child, parent := r.dims[h.dims[l]], r.dims[h.dims[l-1]]
			var staged map[string]string
			for i := range dims {
				cv, pv := dims[i][h.dims[l]], dims[i][h.dims[l-1]]
				if cid, ok := child.index[cv]; ok {
					rec := h.parents[l][cid]
					if rec != noParent && parent.dict[rec] != pv {
						return fmt.Errorf("relation: appended row %d: hierarchy %q value %q of level %q is recorded under %q, not %q",
							i, h.name, cv, child.name, parent.dict[rec], pv)
					}
					continue
				}
				if staged == nil {
					staged = make(map[string]string)
				}
				if prev, ok := staged[cv]; ok {
					if prev != pv {
						return fmt.Errorf("relation: appended rows: hierarchy %q value %q of level %q occurs under both %q and %q",
							h.name, cv, child.name, prev, pv)
					}
				} else {
					staged[cv] = pv
				}
			}
		}
	}
	return nil
}
