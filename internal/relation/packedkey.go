package relation

// PackedConj is a Conjunction packed into one uint64, the integer map key
// the explain package uses in place of Conjunction.Key() strings on the
// candidate-index hot path.
//
// Layout (LSB first): predicate i (in canonical, dimension-ascending
// order) occupies bits [20i, 20i+20) as (dim << 16 | value); the
// conjunction's order occupies bits [60, 62). That supports up to 3
// predicates over at most 16 dimensions with dictionaries of at most
// 65536 values — comfortably beyond every explain-by configuration the
// engine meets (the paper's order threshold β̄ defaults to 3). CanPackConjs
// reports whether a (relation, maxOrder) pair stays within those bounds;
// callers fall back to string keys when it does not.
type PackedConj uint64

const (
	packedPredBits  = 20
	packedValueBits = 16
	packedMaxOrder  = 3
	packedMaxDims   = 1 << (packedPredBits - packedValueBits) // 16
	packedMaxValues = 1 << packedValueBits                    // 65536
)

// PackConj packs a canonical (dimension-sorted) conjunction. ok is false
// when the conjunction exceeds the packable bounds: order > 3, a dimension
// index ≥ 16, or a dictionary id ≥ 65536.
func PackConj(c Conjunction) (key PackedConj, ok bool) {
	if len(c) > packedMaxOrder {
		return 0, false
	}
	var k uint64
	for i, p := range c {
		if p.Dim < 0 || p.Dim >= packedMaxDims || p.Value >= packedMaxValues {
			return 0, false
		}
		k |= (uint64(p.Dim)<<packedValueBits | uint64(p.Value)) << (packedPredBits * i)
	}
	k |= uint64(len(c)) << (packedPredBits * packedMaxOrder)
	return PackedConj(k), true
}

// Order returns the number of predicates in the packed conjunction.
func (k PackedConj) Order() int {
	return int(k >> (packedPredBits * packedMaxOrder))
}

// Unpack expands the key back into a canonical Conjunction.
func (k PackedConj) Unpack() Conjunction {
	n := k.Order()
	if n == 0 {
		return nil
	}
	out := make(Conjunction, n)
	for i := 0; i < n; i++ {
		f := uint64(k) >> (packedPredBits * i) & (1<<packedPredBits - 1)
		out[i] = Pred{
			Dim:   int(f >> packedValueBits),
			Value: uint32(f & (packedMaxValues - 1)),
		}
	}
	return out
}

// CanPackConjs reports whether every conjunction of order ≤ maxOrder over
// r's dimensions fits a PackedConj.
func CanPackConjs(r *Relation, maxOrder int) bool {
	if maxOrder > packedMaxOrder || r.NumDims() > packedMaxDims {
		return false
	}
	for _, d := range r.dims {
		if d.Cardinality() > packedMaxValues {
			return false
		}
	}
	return true
}
