package relation

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// snapTestRelation builds a small relation with revised last-day rows,
// multi-value dictionaries, and two measures — enough structure to catch
// field-level codec mistakes.
func snapTestRelation(t *testing.T) *Relation {
	t.Helper()
	b := NewBuilder("snaptest", "date", []string{"state", "county"}, []string{"cases", "deaths"})
	states := []string{"NY", "CA", "TX"}
	counties := []string{"a", "b"}
	row := 0
	for d := 0; d < 12; d++ {
		for _, s := range states {
			for _, c := range counties {
				date := fmt.Sprintf("2020-01-%02d", d+1)
				if err := b.Append(date, []string{s, c}, []float64{float64(row % 17), float64(row % 5)}); err != nil {
					t.Fatal(err)
				}
				row++
			}
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// relationsEqual compares two relations field by field through the public
// accessors.
func relationsEqual(t *testing.T, a, b *Relation) {
	t.Helper()
	if a.Name() != b.Name() || a.TimeName() != b.TimeName() || a.NumRows() != b.NumRows() {
		t.Fatalf("header mismatch: (%q,%q,%d) vs (%q,%q,%d)",
			a.Name(), a.TimeName(), a.NumRows(), b.Name(), b.TimeName(), b.NumRows())
	}
	if !reflect.DeepEqual(a.TimeLabels(), b.TimeLabels()) {
		t.Fatalf("time labels differ")
	}
	for row := 0; row < a.NumRows(); row++ {
		if a.TimeIndex(row) != b.TimeIndex(row) {
			t.Fatalf("row %d time index %d vs %d", row, a.TimeIndex(row), b.TimeIndex(row))
		}
	}
	if !reflect.DeepEqual(a.DimNames(), b.DimNames()) {
		t.Fatalf("dim names differ: %v vs %v", a.DimNames(), b.DimNames())
	}
	for d := 0; d < a.NumDims(); d++ {
		if !reflect.DeepEqual(a.Dim(d).Values(), b.Dim(d).Values()) {
			t.Fatalf("dim %d dictionaries differ (order matters: ids must survive the roundtrip)", d)
		}
		for row := 0; row < a.NumRows(); row++ {
			if a.DimID(d, row) != b.DimID(d, row) {
				t.Fatalf("dim %d row %d id %d vs %d", d, row, a.DimID(d, row), b.DimID(d, row))
			}
		}
	}
	if !reflect.DeepEqual(a.MeasureNames(), b.MeasureNames()) {
		t.Fatalf("measure names differ")
	}
	for m := 0; m < a.NumMeasures(); m++ {
		for row := 0; row < a.NumRows(); row++ {
			if a.MeasureValue(m, row) != b.MeasureValue(m, row) {
				t.Fatalf("measure %d row %d: %v vs %v", m, row, a.MeasureValue(m, row), b.MeasureValue(m, row))
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := snapTestRelation(t)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	relationsEqual(t, r, got)

	// The decoded relation must be fully functional, not just equal:
	// append to it and aggregate.
	if err := got.AppendRows(
		[]string{"2020-01-13"},
		[][]string{{"FL", "c"}},
		[][]float64{{7, 1}},
	); err != nil {
		t.Fatalf("decoded relation rejects appends: %v", err)
	}
	if got.NumTimestamps() != r.NumTimestamps()+1 {
		t.Fatalf("append after decode: %d timestamps, want %d", got.NumTimestamps(), r.NumTimestamps()+1)
	}
}

func TestSnapshotRoundTripDeterministic(t *testing.T) {
	r := snapTestRelation(t)
	var a, b bytes.Buffer
	if err := r.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshot encoding is not deterministic")
	}
}

func TestSnapshotTruncated(t *testing.T) {
	r := snapTestRelation(t)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail with an error, never panic or succeed.
	for _, cut := range []int{0, 1, 3, 7, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(full))
		}
	}
}

func TestSnapshotCorruptLengths(t *testing.T) {
	r := snapTestRelation(t)
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), full...)
	bad[0] = 'X'
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic decoded without error")
	}
	// Bad version.
	bad = append([]byte(nil), full...)
	bad[4] = 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version decoded without error")
	}
	// Absurd string length right after the version byte: must fail the
	// sanity cap (or truncation), not attempt the allocation.
	bad = append([]byte(nil), full[:5]...)
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Fatal("absurd length decoded without error")
	}
}

func TestClone(t *testing.T) {
	r := snapTestRelation(t)
	c := r.Clone()
	relationsEqual(t, r, c)

	// Mutating the clone must not touch the original.
	if err := c.AppendRows(
		[]string{"2020-01-13"},
		[][]string{{"WA", "z"}},
		[][]float64{{1, 2}},
	); err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 72 || r.NumTimestamps() != 12 {
		t.Fatalf("clone mutation leaked into original: %d rows, %d timestamps", r.NumRows(), r.NumTimestamps())
	}
	if c.Dim(0).Cardinality() != 4 || r.Dim(0).Cardinality() != 3 {
		t.Fatalf("dictionary sharing between clone and original: %d vs %d",
			c.Dim(0).Cardinality(), r.Dim(0).Cardinality())
	}
}
