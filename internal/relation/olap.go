package relation

import "fmt"

// This file implements the OLAP operations Section 1 promises around the
// engine ("users can freely perform OLAP operations, including
// drill-down, roll-up, slicing, and dicing"). Slicing is Filter in
// predicate.go; drill-down is implicit in the explain-by hierarchy.

// RollUp aggregates away every dimension not listed in keepDims: rows
// that agree on the kept dimensions and the timestamp are merged, with
// every measure summed. (SUM is the only sound merge for additive
// measures; AVG/COUNT queries still work afterwards because the engine
// recomputes counts from rows — callers who need exact AVG semantics
// should keep the relation unrolled.)
func RollUp(r *Relation, keepDims []string) (*Relation, error) {
	keep := make([]int, 0, len(keepDims))
	for _, name := range keepDims {
		d := r.DimIndex(name)
		if d < 0 {
			return nil, fmt.Errorf("relation: unknown dimension %q", name)
		}
		keep = append(keep, d)
	}

	type key struct {
		t    int
		dims string
	}
	sums := make(map[key][]float64)
	order := make([]key, 0)
	dimVals := make(map[key][]string)
	for row := 0; row < r.NumRows(); row++ {
		vals := make([]string, len(keep))
		var enc string
		for i, d := range keep {
			vals[i] = r.DimValue(d, row)
			enc += vals[i] + "\x00"
		}
		k := key{t: r.TimeIndex(row), dims: enc}
		acc, ok := sums[k]
		if !ok {
			acc = make([]float64, r.NumMeasures())
			sums[k] = acc
			order = append(order, k)
			dimVals[k] = vals
		}
		for m := 0; m < r.NumMeasures(); m++ {
			acc[m] += r.MeasureValue(m, row)
		}
	}

	b := NewBuilder(r.Name()+"-rollup", r.TimeName(), keepDims, r.MeasureNames())
	b.SetTimeOrder(r.TimeLabels())
	for _, k := range order {
		if err := b.Append(r.TimeLabel(k.t), dimVals[k], sums[k]); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// Dice keeps only rows whose dimension values fall inside the given value
// sets (a multi-value generalization of slicing). Dimensions not listed
// are unconstrained.
func Dice(r *Relation, constraints map[string][]string) (*Relation, error) {
	type dimSet struct {
		dim int
		ids map[uint32]bool
	}
	var sets []dimSet
	//tsexplain:unordered conjunctive filter; set order never changes which rows pass
	for attr, vals := range constraints {
		d := r.DimIndex(attr)
		if d < 0 {
			return nil, fmt.Errorf("relation: unknown dimension %q", attr)
		}
		ids := make(map[uint32]bool, len(vals))
		for _, v := range vals {
			id, ok := r.Dim(d).ID(v)
			if !ok {
				continue // absent values simply match nothing
			}
			ids[id] = true
		}
		sets = append(sets, dimSet{dim: d, ids: ids})
	}

	b := NewBuilder(r.Name()+"-dice", r.TimeName(), r.DimNames(), r.MeasureNames())
	b.SetTimeOrder(r.TimeLabels())
	dims := make([]string, r.NumDims())
	meas := make([]float64, r.NumMeasures())
rows:
	for row := 0; row < r.NumRows(); row++ {
		for _, s := range sets {
			if !s.ids[r.DimID(s.dim, row)] {
				continue rows
			}
		}
		for d := range dims {
			dims[d] = r.DimValue(d, row)
		}
		for m := range meas {
			meas[m] = r.MeasureValue(m, row)
		}
		if err := b.Append(r.TimeLabel(r.TimeIndex(row)), dims, meas); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}

// TimeRange restricts the relation to timestamps in [fromLabel, toLabel]
// inclusive (by series position, resolved from the labels), which is how
// a user scopes the "time period they are interested in" before
// explaining.
func TimeRange(r *Relation, fromLabel, toLabel string) (*Relation, error) {
	from, to := -1, -1
	for i := 0; i < r.NumTimestamps(); i++ {
		switch r.TimeLabel(i) {
		case fromLabel:
			from = i
		case toLabel:
			to = i
		}
	}
	if from < 0 {
		return nil, fmt.Errorf("relation: unknown time label %q", fromLabel)
	}
	if to < 0 {
		return nil, fmt.Errorf("relation: unknown time label %q", toLabel)
	}
	if from > to {
		return nil, fmt.Errorf("relation: time range [%s, %s] is inverted", fromLabel, toLabel)
	}

	labels := r.TimeLabels()[from : to+1]
	b := NewBuilder(r.Name()+"-range", r.TimeName(), r.DimNames(), r.MeasureNames())
	b.SetTimeOrder(labels)
	dims := make([]string, r.NumDims())
	meas := make([]float64, r.NumMeasures())
	for row := 0; row < r.NumRows(); row++ {
		t := r.TimeIndex(row)
		if t < from || t > to {
			continue
		}
		for d := range dims {
			dims[d] = r.DimValue(d, row)
		}
		for m := range meas {
			meas[m] = r.MeasureValue(m, row)
		}
		if err := b.Append(r.TimeLabel(t), dims, meas); err != nil {
			return nil, err
		}
	}
	return b.Finish()
}
