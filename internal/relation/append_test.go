package relation

import (
	"fmt"
	"testing"
)

// buildRows constructs a relation from row-major data via the Builder.
func buildRows(t *testing.T, timeVals []string, dims [][]string, measures [][]float64) *Relation {
	t.Helper()
	b := NewBuilder("t", "day", []string{"a", "b"}, []string{"v"})
	for i := range timeVals {
		if err := b.Append(timeVals[i], dims[i], measures[i]); err != nil {
			t.Fatal(err)
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sameRelation(t *testing.T, got, want *Relation) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	if got.NumTimestamps() != want.NumTimestamps() {
		t.Fatalf("timestamps = %d, want %d", got.NumTimestamps(), want.NumTimestamps())
	}
	for i := 0; i < want.NumTimestamps(); i++ {
		if got.TimeLabel(i) != want.TimeLabel(i) {
			t.Fatalf("label %d = %q, want %q", i, got.TimeLabel(i), want.TimeLabel(i))
		}
	}
	for d := 0; d < want.NumDims(); d++ {
		gd, wd := got.Dim(d), want.Dim(d)
		if gd.Cardinality() != wd.Cardinality() {
			t.Fatalf("dim %d cardinality %d, want %d", d, gd.Cardinality(), wd.Cardinality())
		}
		// Dictionaries must match id-for-id (first-appearance order).
		for id := 0; id < wd.Cardinality(); id++ {
			if gd.Value(uint32(id)) != wd.Value(uint32(id)) {
				t.Fatalf("dim %d dict[%d] = %q, want %q", d, id, gd.Value(uint32(id)), wd.Value(uint32(id)))
			}
		}
	}
	for row := 0; row < want.NumRows(); row++ {
		if got.TimeIndex(row) != want.TimeIndex(row) {
			t.Fatalf("row %d time index %d, want %d", row, got.TimeIndex(row), want.TimeIndex(row))
		}
		for d := 0; d < want.NumDims(); d++ {
			if got.DimID(d, row) != want.DimID(d, row) {
				t.Fatalf("row %d dim %d id %d, want %d", row, d, got.DimID(d, row), want.DimID(d, row))
			}
		}
		for m := 0; m < want.NumMeasures(); m++ {
			if got.MeasureValue(m, row) != want.MeasureValue(m, row) {
				t.Fatalf("row %d measure %d = %v, want %v", row, m, got.MeasureValue(m, row), want.MeasureValue(m, row))
			}
		}
	}
}

func TestAppendRowsMatchesBatchBuild(t *testing.T) {
	var timeVals []string
	var dims [][]string
	var measures [][]float64
	for day := 0; day < 8; day++ {
		for _, a := range []string{"x", "y"} {
			timeVals = append(timeVals, fmt.Sprintf("d%02d", day))
			dims = append(dims, []string{a, fmt.Sprintf("g%d", day%3)})
			measures = append(measures, []float64{float64(day*10 + len(a))})
		}
	}
	// A brand-new dimension value arrives mid-stream.
	timeVals = append(timeVals, "d08", "d08")
	dims = append(dims, []string{"z", "g0"}, []string{"x", "g9"})
	measures = append(measures, []float64{77}, []float64{88})

	full := buildRows(t, timeVals, dims, measures)

	const split = 10
	streamed := buildRows(t, timeVals[:split], dims[:split], measures[:split])
	// Feed the remainder in two batches, the second revising the last day.
	if err := streamed.AppendRows(timeVals[split:14], dims[split:14], measures[split:14]); err != nil {
		t.Fatal(err)
	}
	if err := streamed.AppendRows(timeVals[14:], dims[14:], measures[14:]); err != nil {
		t.Fatal(err)
	}
	sameRelation(t, streamed, full)
}

func TestAppendRowsValidation(t *testing.T) {
	base := buildRows(t,
		[]string{"d00", "d01"},
		[][]string{{"x", "g0"}, {"x", "g0"}},
		[][]float64{{1}, {2}})

	cases := []struct {
		name     string
		timeVals []string
		dims     [][]string
		measures [][]float64
	}{
		{"earlier timestamp", []string{"d00"}, [][]string{{"x", "g0"}}, [][]float64{{3}}},
		{"dim count", []string{"d02"}, [][]string{{"x"}}, [][]float64{{3}}},
		{"measure count", []string{"d02"}, [][]string{{"x", "g0"}}, [][]float64{{3, 4}}},
		{"ragged lengths", []string{"d02", "d03"}, [][]string{{"x", "g0"}}, [][]float64{{3}, {4}}},
	}
	for _, tc := range cases {
		if err := base.AppendRows(tc.timeVals, tc.dims, tc.measures); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	// Failed appends must leave the relation untouched.
	if base.NumRows() != 2 || base.NumTimestamps() != 2 {
		t.Errorf("failed append mutated the relation: %d rows, %d timestamps", base.NumRows(), base.NumTimestamps())
	}
	// Revising the current last timestamp is allowed.
	if err := base.AppendRows([]string{"d01"}, [][]string{{"y", "g1"}}, [][]float64{{9}}); err != nil {
		t.Errorf("last-day revision: %v", err)
	}
}

func TestRowsByTime(t *testing.T) {
	r := buildRows(t,
		[]string{"d01", "d00", "d01", "d00"},
		[][]string{{"x", "g0"}, {"y", "g0"}, {"x", "g1"}, {"y", "g1"}},
		[][]float64{{1}, {2}, {3}, {4}})
	byTime := r.RowsByTime()
	if len(byTime) != 2 {
		t.Fatalf("positions = %d, want 2", len(byTime))
	}
	// d00 sorts first; its rows are 1 and 3 in row order.
	if fmt.Sprint(byTime[0]) != "[1 3]" || fmt.Sprint(byTime[1]) != "[0 2]" {
		t.Errorf("byTime = %v", byTime)
	}
}

// TestGroupByPlanAppendMatchesFresh extends a plan with delta rows and
// checks the grouped series against a fresh plan over the full relation,
// including the re-key path when a dictionary outgrows its packed width.
func TestGroupByPlanAppendMatchesFresh(t *testing.T) {
	var timeVals []string
	var dims [][]string
	var measures [][]float64
	addDay := func(day int, a, b string, v float64) {
		timeVals = append(timeVals, fmt.Sprintf("d%02d", day))
		dims = append(dims, []string{a, b})
		measures = append(measures, []float64{v})
	}
	// Prefix: dimension "a" has 2 values (1 packed bit).
	for day := 0; day < 4; day++ {
		addDay(day, "x", "g0", float64(day+1))
		addDay(day, "y", "g1", float64(2*day+1))
	}
	prefixRows := len(timeVals)
	// Delta: values "z", "w" push dimension "a" past its packed width and
	// introduce new groups.
	for day := 4; day < 7; day++ {
		addDay(day, "x", "g1", float64(day))
		addDay(day, "z", "g0", float64(3*day))
		addDay(day, "w", "g2", float64(day*day))
	}

	streamed := buildRows(t, timeVals[:prefixRows], dims[:prefixRows], measures[:prefixRows])
	for _, dsel := range [][]int{{0}, {1}, {0, 1}} {
		plan := streamed.PlanGroupBy(dsel, 0)
		oldGroups := plan.NumGroups()
		oldIDs := make([]string, oldGroups)
		for g := range oldIDs {
			oldIDs[g] = fmt.Sprint(plan.GroupIDsAt(g))
		}

		if err := streamed.AppendRows(timeVals[prefixRows:], dims[prefixRows:], measures[prefixRows:]); err != nil {
			t.Fatal(err)
		}
		added := plan.AppendRows(prefixRows)
		if plan.NumGroups() != oldGroups+added {
			t.Fatalf("dims %v: %d groups after adding %d to %d", dsel, plan.NumGroups(), added, oldGroups)
		}
		for g := 0; g < oldGroups; g++ {
			if fmt.Sprint(plan.GroupIDsAt(g)) != oldIDs[g] {
				t.Fatalf("dims %v: group rank %d id tuple changed from %s to %v", dsel, g, oldIDs[g], plan.GroupIDsAt(g))
			}
		}

		// Streamed fill: old contributions into fresh series, then only
		// the delta.
		T := streamed.NumTimestamps()
		series := make([][]SumCount, plan.NumGroups())
		for g := range series {
			series[g] = make([]SumCount, T)
		}
		plan.FillRows(0, func(rank int) []SumCount { return series[rank] })

		fresh := streamed.GroupBySeriesColumnar(dsel, 0)
		if fresh.NumGroups() != plan.NumGroups() {
			t.Fatalf("dims %v: fresh has %d groups, streamed %d", dsel, fresh.NumGroups(), plan.NumGroups())
		}
		// Match groups by id tuple; series must be identical.
		byTuple := make(map[string]int)
		for g := 0; g < fresh.NumGroups(); g++ {
			byTuple[fmt.Sprint(fresh.GroupIDs(g))] = g
		}
		for g := 0; g < plan.NumGroups(); g++ {
			fg, ok := byTuple[fmt.Sprint(plan.GroupIDsAt(g))]
			if !ok {
				t.Fatalf("dims %v: streamed group %v missing from fresh", dsel, plan.GroupIDsAt(g))
			}
			want := fresh.Series(fg)
			for i := range want {
				if series[g][i] != want[i] {
					t.Fatalf("dims %v group %v t=%d: %+v, want %+v", dsel, plan.GroupIDsAt(g), i, series[g][i], want[i])
				}
			}
		}

		// Rebuild the relation for the next dimension selection.
		streamed = buildRows(t, timeVals[:prefixRows], dims[:prefixRows], measures[:prefixRows])
	}
}

// TestGroupByPlanAppendFallbackOverflow drives the packed plan past 64
// total bits so it must migrate to byte-string keys mid-stream.
func TestGroupByPlanAppendFallbackOverflow(t *testing.T) {
	const nd = 7
	dimNames := make([]string, nd)
	for i := range dimNames {
		dimNames[i] = fmt.Sprintf("d%d", i)
	}
	b := NewBuilder("wide", "day", dimNames, []string{"v"})
	row := func(day int, tag int) ([]string, []float64) {
		vals := make([]string, nd)
		for i := range vals {
			vals[i] = fmt.Sprintf("v%d-%d", i, tag)
		}
		return vals, []float64{float64(tag + day)}
	}
	for day := 0; day < 2; day++ {
		for tag := 0; tag < 2; tag++ {
			dv, mv := row(day, tag)
			if err := b.Append(fmt.Sprintf("d%03d", day), dv, mv); err != nil {
				t.Fatal(err)
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	dsel := make([]int, nd)
	for i := range dsel {
		dsel[i] = i
	}
	plan := rel.PlanGroupBy(dsel, 0)
	fromRow := rel.NumRows()

	// 1100 distinct values per dimension ⇒ 11 bits × 7 dims = 77 > 64.
	var tv []string
	var dv [][]string
	var mv [][]float64
	for tag := 0; tag < 1100; tag++ {
		rv, rm := row(2, tag)
		tv = append(tv, "d002")
		dv = append(dv, rv)
		mv = append(mv, rm)
	}
	if err := rel.AppendRows(tv, dv, mv); err != nil {
		t.Fatal(err)
	}
	plan.AppendRows(fromRow)

	fresh := rel.GroupBySeriesColumnar(dsel, 0)
	if plan.NumGroups() != fresh.NumGroups() {
		t.Fatalf("groups = %d, want %d", plan.NumGroups(), fresh.NumGroups())
	}
	T := rel.NumTimestamps()
	series := make([][]SumCount, plan.NumGroups())
	for g := range series {
		series[g] = make([]SumCount, T)
	}
	plan.FillRows(0, func(rank int) []SumCount { return series[rank] })
	byTuple := make(map[string]int)
	for g := 0; g < fresh.NumGroups(); g++ {
		byTuple[fmt.Sprint(fresh.GroupIDs(g))] = g
	}
	for g := 0; g < plan.NumGroups(); g++ {
		fg, ok := byTuple[fmt.Sprint(plan.GroupIDsAt(g))]
		if !ok {
			t.Fatalf("group %v missing from fresh", plan.GroupIDsAt(g))
		}
		want := fresh.Series(fg)
		for i := range want {
			if series[g][i] != want[i] {
				t.Fatalf("group %v t=%d: %+v, want %+v", plan.GroupIDsAt(g), i, series[g][i], want[i])
			}
		}
	}
}
