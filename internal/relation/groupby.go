package relation

import (
	"math/bits"
	"sort"
)

// This file implements the columnar, integer-keyed group-by kernel that
// replaced the string-keyed GroupBySeries on the precompute hot path.
//
// The kernel runs in two passes. Pass 1 (PlanGroupBy) scans the rows once,
// packs each row's dictionary-id tuple over the requested dimensions into a
// single uint64 and assigns dense group slots through a map[uint64]int32 —
// no per-row heap allocation, no string hashing. Pass 2 (Fill) scans the
// rows again and accumulates each row's (sum, count) contribution into a
// single contiguous []SumCount arena of size groups×T, instead of one
// slice allocation per group.
//
// Splitting the passes lets a caller (explain.NewUniverse) plan many
// group-bys first, allocate ONE arena for all of them, and then fill the
// disjoint arena ranges in parallel.
//
// When the requested dimensions' dictionary widths cannot be packed into
// 64 bits (astronomical cardinalities), the kernel transparently falls
// back to byte-string keys for slot assignment; the output format and the
// group ordering are identical either way.

// GroupedSeries is the columnar result of one group-by: for every distinct
// dictionary-id combination of Dims that occurs in the relation, the
// decomposed per-timestamp aggregate of the planned measure. Groups are
// ordered by their id tuples (lexicographically ascending), which makes
// the result deterministic and mergeable.
type GroupedSeries struct {
	// Dims holds the grouped dimension indexes, ascending.
	Dims []int
	// T is the series length (the relation's timestamp count).
	T int

	n     int        // number of distinct groups
	ids   []uint32   // group-major id tuples: group g owns ids[g*len(Dims):(g+1)*len(Dims)]
	arena []SumCount // group-major series: group g owns arena[g*T:(g+1)*T]
}

// NumGroups returns the number of distinct groups.
func (g *GroupedSeries) NumGroups() int { return g.n }

// GroupIDs returns group i's dictionary-id tuple, parallel to Dims. The
// slice aliases kernel storage and must not be modified.
func (g *GroupedSeries) GroupIDs(i int) []uint32 {
	d := len(g.Dims)
	return g.ids[i*d : (i+1)*d : (i+1)*d]
}

// Series returns group i's decomposed per-timestamp aggregate. The slice
// aliases the arena and must not be modified.
func (g *GroupedSeries) Series(i int) []SumCount {
	return g.arena[i*g.T : (i+1)*g.T : (i+1)*g.T]
}

// Arena exposes the backing arena (all groups' series, contiguous).
func (g *GroupedSeries) Arena() []SumCount { return g.arena }

// GroupByPlan is the pass-1 state of the columnar kernel: the dense
// slot assignment for every distinct group, sorted into canonical order,
// ready to fill an arena.
type GroupByPlan struct {
	r    *Relation
	dims []int
	m    int

	// packed is true when id tuples fit a uint64 (the common case).
	packed bool
	shifts []uint           // per-dim left-shift amounts for packing
	slots  map[uint64]int32 // packed key -> first-occurrence slot
	sslots map[string]int32 // fallback: byte-string key -> slot

	n        int      // number of distinct groups
	ids      []uint32 // slot-major id tuples, first-occurrence order
	perm     []int32  // slot -> sorted group index (rank)
	rankSlot []int32  // rank -> slot (inverse of perm)

	// rowSlot records each scanned row's slot during pass 1, so the first
	// arena fill is a pure array walk with no key packing or hashing. It
	// is released after that fill (O(rows) transient state); later fills —
	// and the streaming append path — go through the slot maps as before.
	rowSlot []int32
}

// directTableMaxBits bounds the packed keyspace a direct-address slot
// table may cover: 2^22 × 4 bytes = 16 MiB transient, the point past
// which clearing the table costs more than hashing saves.
const directTableMaxBits = 22

// PlanGroupBy runs pass 1 of the columnar group-by kernel over the given
// dimensions for measure m: it discovers every distinct id combination and
// assigns each a dense group index in canonical (id-tuple ascending)
// order. The plan retains no per-row state, so holding many plans at once
// costs O(groups), not O(rows).
func (r *Relation) PlanGroupBy(dims []int, m int) *GroupByPlan {
	return r.planGroupBy(dims, m, false)
}

// planGroupBy is PlanGroupBy with the fallback keying forcible for tests.
func (r *Relation) planGroupBy(dims []int, m int, forceFallback bool) *GroupByPlan {
	p := &GroupByPlan{r: r, dims: append([]int(nil), dims...), m: m}

	// Decide the packing layout: each dimension gets just enough bits for
	// its dictionary. The dims of any realistic explain-by subset fit a
	// uint64 with lots of room to spare.
	p.shifts = make([]uint, len(dims))
	var totalBits uint
	for i, d := range dims {
		w := bitsFor(r.dims[d].Cardinality())
		p.shifts[i] = w
		totalBits += w
	}
	p.packed = totalBits <= 64 && !forceFallback

	p.rowSlot = make([]int32, r.numRows)
	if p.packed {
		p.slots = make(map[uint64]int32, 64)
		// When the packed keyspace is small enough, slot discovery runs
		// against a direct-address table instead of the map: one bounds-
		// checked load per row. The map is still populated per distinct
		// group (cheap — groups ≪ rows) because the streaming append path
		// keys through it after the table is released.
		if tableSize := 1 << totalBits; totalBits <= directTableMaxBits &&
			(totalBits <= 16 || tableSize <= 8*r.numRows) {
			table := make([]int32, tableSize)
			for i := range table {
				table[i] = -1
			}
			for row := 0; row < r.numRows; row++ {
				k := p.rowKey(row)
				s := table[k]
				if s < 0 {
					s = int32(len(p.slots))
					table[k] = s
					p.slots[k] = s
					for _, d := range dims {
						p.ids = append(p.ids, r.dims[d].ids[row])
					}
				}
				p.rowSlot[row] = s
			}
		} else {
			for row := 0; row < r.numRows; row++ {
				k := p.rowKey(row)
				s, ok := p.slots[k]
				if !ok {
					s = int32(len(p.slots))
					p.slots[k] = s
					for _, d := range dims {
						p.ids = append(p.ids, r.dims[d].ids[row])
					}
				}
				p.rowSlot[row] = s
			}
		}
	} else {
		p.sslots = make(map[string]int32, 64)
		buf := make([]byte, 0, len(dims)*4)
		for row := 0; row < r.numRows; row++ {
			buf = p.rowFallbackKey(buf, row)
			s, ok := p.sslots[string(buf)]
			if !ok {
				s = int32(len(p.sslots))
				p.sslots[string(buf)] = s
				for _, d := range dims {
					p.ids = append(p.ids, r.dims[d].ids[row])
				}
			}
			p.rowSlot[row] = s
		}
	}

	if p.packed {
		p.n = len(p.slots)
	} else {
		p.n = len(p.sslots)
	}

	// Sort groups by id tuple so downstream candidate IDs are assigned
	// deterministically regardless of row order or parallelism. An empty
	// dims list degenerates to at most one grand-total group, matching
	// the legacy kernel's single ""-keyed group.
	n := p.n
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	d := len(dims)
	sort.Slice(order, func(a, b int) bool {
		ta := p.ids[int(order[a])*d : int(order[a])*d+d]
		tb := p.ids[int(order[b])*d : int(order[b])*d+d]
		for i := 0; i < d; i++ {
			if ta[i] != tb[i] {
				return ta[i] < tb[i]
			}
		}
		return false
	})
	p.perm = make([]int32, n)
	p.rankSlot = order
	for rank, slot := range order {
		p.perm[slot] = int32(rank)
	}
	return p
}

// GroupIDsAt returns the id tuple of the group with the given rank,
// parallel to the planned dimensions. The slice aliases plan storage and
// must not be modified.
func (p *GroupByPlan) GroupIDsAt(rank int) []uint32 {
	d := len(p.dims)
	s := int(p.rankSlot[rank])
	return p.ids[s*d : s*d+d : s*d+d]
}

// packTuple packs an id tuple with the plan's current shift layout.
//
//tsexplain:hotpath
func (p *GroupByPlan) packTuple(ids []uint32) uint64 {
	var k uint64
	for i, v := range ids {
		k = k<<p.shifts[i] | uint64(v)
	}
	return k
}

// fallbackKey renders an id tuple as the byte-string key of the fallback
// keying scheme. Every fallback path — discovery, fill, append — must
// encode through it (or rowFallbackKey) so the layout exists in exactly
// one place.
func fallbackKey(buf []byte, ids []uint32) []byte {
	buf = buf[:0]
	for _, v := range ids {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// rowFallbackKey renders the row's id tuple over the planned dimensions
// as a fallback key, reusing buf.
func (p *GroupByPlan) rowFallbackKey(buf []byte, row int) []byte {
	buf = buf[:0]
	for _, d := range p.dims {
		v := p.r.dims[d].ids[row]
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// ensureKeyCapacity re-checks the packing layout against the current
// dictionaries, which may have grown since the plan was built (streaming
// appends introduce new categorical values). When a dimension outgrew its
// bit width the slot map is re-keyed from the stored id tuples: with wider
// shifts while everything still fits 64 bits, otherwise by migrating to
// the byte-string fallback. Either way existing slots and ranks survive.
func (p *GroupByPlan) ensureKeyCapacity() {
	if !p.packed {
		return
	}
	grown := false
	var totalBits uint
	for i, d := range p.dims {
		w := bitsFor(p.r.dims[d].Cardinality())
		if w > p.shifts[i] {
			grown = true
		} else {
			w = p.shifts[i]
		}
		totalBits += w
	}
	if !grown {
		return
	}
	d := len(p.dims)
	if totalBits <= 64 {
		for i, dim := range p.dims {
			if w := bitsFor(p.r.dims[dim].Cardinality()); w > p.shifts[i] {
				p.shifts[i] = w
			}
		}
		slots := make(map[uint64]int32, len(p.slots))
		for slot := 0; slot < p.n; slot++ {
			slots[p.packTuple(p.ids[slot*d:slot*d+d])] = int32(slot)
		}
		p.slots = slots
		return
	}
	p.packed = false
	p.slots = nil
	p.sslots = make(map[string]int32, p.n)
	buf := make([]byte, 0, d*4)
	for slot := 0; slot < p.n; slot++ {
		buf = fallbackKey(buf, p.ids[slot*d:slot*d+d])
		p.sslots[string(buf)] = int32(slot)
	}
}

// AppendRows extends the plan with the relation rows [fromRow, NumRows):
// pass 1 of the append path. Groups first occurring in the delta are
// assigned the ranks after every existing one, ordered by id tuple among
// themselves, so existing ranks — and therefore the candidate IDs built on
// them — stay stable. It returns the number of groups added.
func (p *GroupByPlan) AppendRows(fromRow int) int {
	r := p.r
	p.ensureKeyCapacity()
	oldN := p.n
	if p.packed {
		for row := fromRow; row < r.numRows; row++ {
			k := p.rowKey(row)
			if _, ok := p.slots[k]; !ok {
				p.slots[k] = int32(len(p.slots))
				for _, d := range p.dims {
					p.ids = append(p.ids, r.dims[d].ids[row])
				}
			}
		}
		p.n = len(p.slots)
	} else {
		buf := make([]byte, 0, len(p.dims)*4)
		for row := fromRow; row < r.numRows; row++ {
			buf = p.rowFallbackKey(buf, row)
			if _, ok := p.sslots[string(buf)]; !ok {
				p.sslots[string(buf)] = int32(len(p.sslots))
				for _, d := range p.dims {
					p.ids = append(p.ids, r.dims[d].ids[row])
				}
			}
		}
		p.n = len(p.sslots)
	}
	added := p.n - oldN
	if added == 0 {
		return 0
	}
	// Order the delta's new groups among themselves by id tuple (the same
	// canonical order the initial plan uses), after all existing ranks.
	d := len(p.dims)
	order := make([]int32, added)
	for i := range order {
		order[i] = int32(oldN + i)
	}
	sort.Slice(order, func(a, b int) bool {
		ta := p.ids[int(order[a])*d : int(order[a])*d+d]
		tb := p.ids[int(order[b])*d : int(order[b])*d+d]
		for i := 0; i < d; i++ {
			if ta[i] != tb[i] {
				return ta[i] < tb[i]
			}
		}
		return false
	})
	p.perm = append(p.perm, make([]int32, added)...)
	for i, slot := range order {
		p.perm[slot] = int32(oldN + i)
	}
	p.rankSlot = append(p.rankSlot, order...)
	return added
}

// FillRows accumulates the relation rows [fromRow, NumRows) into
// per-group destination series obtained from the series callback, which
// maps a group's rank to the slice (indexed by time position) that should
// receive its contributions. It is the append path's pass 2: the universe
// hands out views into its shared arena, and only the delta is scanned.
//
//tsexplain:hotpath
func (p *GroupByPlan) FillRows(fromRow int, series func(rank int) []SumCount) {
	r := p.r
	vals := r.measures[p.m].vals
	if p.packed {
		for row := fromRow; row < r.numRows; row++ {
			sc := series(int(p.perm[p.slots[p.rowKey(row)]]))
			s := &sc[r.timeIdx[row]]
			s.Sum += vals[row]
			s.Count++
		}
		return
	}
	buf := make([]byte, 0, len(p.dims)*4)
	for row := fromRow; row < r.numRows; row++ {
		buf = p.rowFallbackKey(buf, row)
		sc := series(int(p.perm[p.sslots[string(buf)]]))
		s := &sc[r.timeIdx[row]]
		s.Sum += vals[row]
		s.Count++
	}
}

// rowKey packs the row's id tuple over the planned dimensions.
//
//tsexplain:hotpath
func (p *GroupByPlan) rowKey(row int) uint64 {
	var k uint64
	for i, d := range p.dims {
		k = k<<p.shifts[i] | uint64(p.r.dims[d].ids[row])
	}
	return k
}

// NumGroups returns the number of distinct groups the plan discovered.
func (p *GroupByPlan) NumGroups() int { return p.n }

// FillArena runs pass 2 into a strided arena: group rank g's series
// occupies arena[g*stride : g*stride+T], with stride ≥ T. The stride lets
// a caller lay groups out with tail headroom so streaming appends extend
// series in place. Distinct plans write to distinct arenas (or disjoint
// ranges of a shared one), so calls on different plans may run
// concurrently.
//
//tsexplain:hotpath
func (p *GroupByPlan) FillArena(arena []SumCount, stride int) {
	r := p.r
	T := r.NumTimestamps()
	if p.NumGroups() == 0 {
		return
	}
	if stride < T || len(arena) < (p.NumGroups()-1)*stride+T {
		panic("relation: GroupByPlan.FillArena arena too small for stride")
	}
	vals := r.measures[p.m].vals
	// The common one-shot flow (plan, then fill once) takes the recorded-
	// slot path: no key packing, no hashing — three indexed loads and one
	// accumulate per row. The record is released afterwards so holding a
	// plan stays O(groups); any later fill re-derives slots from the maps,
	// producing identical output (same rows, same accumulation order).
	if rowSlot := p.rowSlot; rowSlot != nil && len(rowSlot) == r.numRows {
		perm, timeIdx := p.perm, r.timeIdx
		for row := 0; row < r.numRows; row++ {
			g := perm[rowSlot[row]]
			sc := &arena[int(g)*stride+int(timeIdx[row])]
			sc.Sum += vals[row]
			sc.Count++
		}
		p.rowSlot = nil
		return
	}
	if p.packed {
		for row := 0; row < r.numRows; row++ {
			g := p.perm[p.slots[p.rowKey(row)]]
			sc := &arena[int(g)*stride+int(r.timeIdx[row])]
			sc.Sum += vals[row]
			sc.Count++
		}
	} else {
		buf := make([]byte, 0, len(p.dims)*4)
		for row := 0; row < r.numRows; row++ {
			buf = p.rowFallbackKey(buf, row)
			g := p.perm[p.sslots[string(buf)]]
			sc := &arena[int(g)*stride+int(r.timeIdx[row])]
			sc.Sum += vals[row]
			sc.Count++
		}
	}
}

// Fill runs pass 2 into the given arena, which must have length
// NumGroups()×T, and returns the columnar result viewing it.
func (p *GroupByPlan) Fill(arena []SumCount) *GroupedSeries {
	T := p.r.NumTimestamps()
	if len(arena) != p.NumGroups()*T {
		panic("relation: GroupByPlan.Fill arena has wrong length")
	}
	if p.NumGroups() > 0 {
		p.FillArena(arena, T)
	}

	// Reorder the first-occurrence id tuples into sorted group order.
	d := len(p.dims)
	ids := make([]uint32, len(p.ids))
	for slot := 0; slot < p.n; slot++ {
		copy(ids[int(p.perm[slot])*d:], p.ids[slot*d:slot*d+d])
	}
	return &GroupedSeries{Dims: p.dims, T: T, n: p.n, ids: ids, arena: arena}
}

// GroupBySeriesColumnar is the one-shot form of the columnar kernel:
// plan, allocate a right-sized arena, and fill it.
func (r *Relation) GroupBySeriesColumnar(dims []int, m int) *GroupedSeries {
	p := r.PlanGroupBy(dims, m)
	return p.Fill(make([]SumCount, p.NumGroups()*r.NumTimestamps()))
}

// bitsFor returns the number of bits needed to store ids 0..card-1.
func bitsFor(card int) uint {
	if card <= 1 {
		return 0
	}
	return uint(bits.Len(uint(card - 1)))
}
