package relation

import (
	"math/bits"
	"sort"
)

// This file implements the columnar, integer-keyed group-by kernel that
// replaced the string-keyed GroupBySeries on the precompute hot path.
//
// The kernel runs in two passes. Pass 1 (PlanGroupBy) scans the rows once,
// packs each row's dictionary-id tuple over the requested dimensions into a
// single uint64 and assigns dense group slots through a map[uint64]int32 —
// no per-row heap allocation, no string hashing. Pass 2 (Fill) scans the
// rows again and accumulates each row's (sum, count) contribution into a
// single contiguous []SumCount arena of size groups×T, instead of one
// slice allocation per group.
//
// Splitting the passes lets a caller (explain.NewUniverse) plan many
// group-bys first, allocate ONE arena for all of them, and then fill the
// disjoint arena ranges in parallel.
//
// When the requested dimensions' dictionary widths cannot be packed into
// 64 bits (astronomical cardinalities), the kernel transparently falls
// back to byte-string keys for slot assignment; the output format and the
// group ordering are identical either way.

// GroupedSeries is the columnar result of one group-by: for every distinct
// dictionary-id combination of Dims that occurs in the relation, the
// decomposed per-timestamp aggregate of the planned measure. Groups are
// ordered by their id tuples (lexicographically ascending), which makes
// the result deterministic and mergeable.
type GroupedSeries struct {
	// Dims holds the grouped dimension indexes, ascending.
	Dims []int
	// T is the series length (the relation's timestamp count).
	T int

	n     int        // number of distinct groups
	ids   []uint32   // group-major id tuples: group g owns ids[g*len(Dims):(g+1)*len(Dims)]
	arena []SumCount // group-major series: group g owns arena[g*T:(g+1)*T]
}

// NumGroups returns the number of distinct groups.
func (g *GroupedSeries) NumGroups() int { return g.n }

// GroupIDs returns group i's dictionary-id tuple, parallel to Dims. The
// slice aliases kernel storage and must not be modified.
func (g *GroupedSeries) GroupIDs(i int) []uint32 {
	d := len(g.Dims)
	return g.ids[i*d : (i+1)*d : (i+1)*d]
}

// Series returns group i's decomposed per-timestamp aggregate. The slice
// aliases the arena and must not be modified.
func (g *GroupedSeries) Series(i int) []SumCount {
	return g.arena[i*g.T : (i+1)*g.T : (i+1)*g.T]
}

// Arena exposes the backing arena (all groups' series, contiguous).
func (g *GroupedSeries) Arena() []SumCount { return g.arena }

// GroupByPlan is the pass-1 state of the columnar kernel: the dense
// slot assignment for every distinct group, sorted into canonical order,
// ready to fill an arena.
type GroupByPlan struct {
	r    *Relation
	dims []int
	m    int

	// packed is true when id tuples fit a uint64 (the common case).
	packed bool
	shifts []uint           // per-dim left-shift amounts for packing
	slots  map[uint64]int32 // packed key -> first-occurrence slot
	sslots map[string]int32 // fallback: byte-string key -> slot

	n    int      // number of distinct groups
	ids  []uint32 // slot-major id tuples, first-occurrence order
	perm []int32  // slot -> sorted group index
}

// PlanGroupBy runs pass 1 of the columnar group-by kernel over the given
// dimensions for measure m: it discovers every distinct id combination and
// assigns each a dense group index in canonical (id-tuple ascending)
// order. The plan retains no per-row state, so holding many plans at once
// costs O(groups), not O(rows).
func (r *Relation) PlanGroupBy(dims []int, m int) *GroupByPlan {
	return r.planGroupBy(dims, m, false)
}

// planGroupBy is PlanGroupBy with the fallback keying forcible for tests.
func (r *Relation) planGroupBy(dims []int, m int, forceFallback bool) *GroupByPlan {
	p := &GroupByPlan{r: r, dims: append([]int(nil), dims...), m: m}

	// Decide the packing layout: each dimension gets just enough bits for
	// its dictionary. The dims of any realistic explain-by subset fit a
	// uint64 with lots of room to spare.
	p.shifts = make([]uint, len(dims))
	var totalBits uint
	for i, d := range dims {
		w := bitsFor(r.dims[d].Cardinality())
		p.shifts[i] = w
		totalBits += w
	}
	p.packed = totalBits <= 64 && !forceFallback

	if p.packed {
		p.slots = make(map[uint64]int32, 64)
		for row := 0; row < r.numRows; row++ {
			k := p.rowKey(row)
			if _, ok := p.slots[k]; !ok {
				p.slots[k] = int32(len(p.slots))
				for _, d := range dims {
					p.ids = append(p.ids, r.dims[d].ids[row])
				}
			}
		}
	} else {
		p.sslots = make(map[string]int32, 64)
		buf := make([]byte, 0, len(dims)*4)
		for row := 0; row < r.numRows; row++ {
			buf = buf[:0]
			for _, d := range dims {
				v := r.dims[d].ids[row]
				buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			if _, ok := p.sslots[string(buf)]; !ok {
				p.sslots[string(buf)] = int32(len(p.sslots))
				for _, d := range dims {
					p.ids = append(p.ids, r.dims[d].ids[row])
				}
			}
		}
	}

	if p.packed {
		p.n = len(p.slots)
	} else {
		p.n = len(p.sslots)
	}

	// Sort groups by id tuple so downstream candidate IDs are assigned
	// deterministically regardless of row order or parallelism. An empty
	// dims list degenerates to at most one grand-total group, matching
	// the legacy kernel's single ""-keyed group.
	n := p.n
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	d := len(dims)
	sort.Slice(order, func(a, b int) bool {
		ta := p.ids[int(order[a])*d : int(order[a])*d+d]
		tb := p.ids[int(order[b])*d : int(order[b])*d+d]
		for i := 0; i < d; i++ {
			if ta[i] != tb[i] {
				return ta[i] < tb[i]
			}
		}
		return false
	})
	p.perm = make([]int32, n)
	for rank, slot := range order {
		p.perm[slot] = int32(rank)
	}
	return p
}

// rowKey packs the row's id tuple over the planned dimensions.
func (p *GroupByPlan) rowKey(row int) uint64 {
	var k uint64
	for i, d := range p.dims {
		k = k<<p.shifts[i] | uint64(p.r.dims[d].ids[row])
	}
	return k
}

// NumGroups returns the number of distinct groups the plan discovered.
func (p *GroupByPlan) NumGroups() int { return p.n }

// Fill runs pass 2 into the given arena, which must have length
// NumGroups()×T, and returns the columnar result viewing it. Distinct
// plans write to distinct arenas (or disjoint ranges of a shared one), so
// Fill calls on different plans may run concurrently.
func (p *GroupByPlan) Fill(arena []SumCount) *GroupedSeries {
	r := p.r
	T := r.NumTimestamps()
	if len(arena) != p.NumGroups()*T {
		panic("relation: GroupByPlan.Fill arena has wrong length")
	}
	vals := r.measures[p.m].vals
	if p.packed {
		for row := 0; row < r.numRows; row++ {
			g := p.perm[p.slots[p.rowKey(row)]]
			sc := &arena[int(g)*T+int(r.timeIdx[row])]
			sc.Sum += vals[row]
			sc.Count++
		}
	} else {
		buf := make([]byte, 0, len(p.dims)*4)
		for row := 0; row < r.numRows; row++ {
			buf = buf[:0]
			for _, d := range p.dims {
				v := r.dims[d].ids[row]
				buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			g := p.perm[p.sslots[string(buf)]]
			sc := &arena[int(g)*T+int(r.timeIdx[row])]
			sc.Sum += vals[row]
			sc.Count++
		}
	}

	// Reorder the first-occurrence id tuples into sorted group order.
	d := len(p.dims)
	ids := make([]uint32, len(p.ids))
	for slot := 0; slot < p.n; slot++ {
		copy(ids[int(p.perm[slot])*d:], p.ids[slot*d:slot*d+d])
	}
	return &GroupedSeries{Dims: p.dims, T: T, n: p.n, ids: ids, arena: arena}
}

// GroupBySeriesColumnar is the one-shot form of the columnar kernel:
// plan, allocate a right-sized arena, and fill it.
func (r *Relation) GroupBySeriesColumnar(dims []int, m int) *GroupedSeries {
	p := r.PlanGroupBy(dims, m)
	return p.Fill(make([]SumCount, p.NumGroups()*r.NumTimestamps()))
}

// bitsFor returns the number of bits needed to store ids 0..card-1.
func bitsFor(card int) uint {
	if card <= 1 {
		return 0
	}
	return uint(bits.Len(uint(card - 1)))
}
