package relation

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildSales builds a small liquor-style relation used across tests:
// 3 days x 2 states x 2 categories, measure = units.
func buildSales(t *testing.T) *Relation {
	t.Helper()
	b := NewBuilder("sales", "date", []string{"state", "category"}, []string{"units"})
	rows := []struct {
		date, state, cat string
		units            float64
	}{
		{"2020-01-01", "NY", "beer", 10},
		{"2020-01-01", "NY", "wine", 5},
		{"2020-01-01", "CA", "beer", 7},
		{"2020-01-02", "NY", "beer", 12},
		{"2020-01-02", "CA", "wine", 3},
		{"2020-01-03", "CA", "beer", 9},
		{"2020-01-03", "CA", "wine", 4},
		{"2020-01-03", "NY", "wine", 6},
	}
	for _, r := range rows {
		if err := b.Append(r.date, []string{r.state, r.cat}, []float64{r.units}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return rel
}

func TestBuilderBasics(t *testing.T) {
	r := buildSales(t)
	if got, want := r.NumRows(), 8; got != want {
		t.Errorf("NumRows = %d, want %d", got, want)
	}
	if got, want := r.NumTimestamps(), 3; got != want {
		t.Errorf("NumTimestamps = %d, want %d", got, want)
	}
	if got, want := r.TimeLabel(0), "2020-01-01"; got != want {
		t.Errorf("TimeLabel(0) = %q, want %q", got, want)
	}
	if got, want := r.TimeLabel(2), "2020-01-03"; got != want {
		t.Errorf("TimeLabel(2) = %q, want %q", got, want)
	}
	if got := r.DimIndex("state"); got != 0 {
		t.Errorf("DimIndex(state) = %d, want 0", got)
	}
	if got := r.DimIndex("category"); got != 1 {
		t.Errorf("DimIndex(category) = %d, want 1", got)
	}
	if got := r.DimIndex("nope"); got != -1 {
		t.Errorf("DimIndex(nope) = %d, want -1", got)
	}
	if got := r.MeasureIndex("units"); got != 0 {
		t.Errorf("MeasureIndex(units) = %d, want 0", got)
	}
	if got := r.MeasureIndex("nope"); got != -1 {
		t.Errorf("MeasureIndex(nope) = %d, want -1", got)
	}
	if got, want := r.Dim(0).Cardinality(), 2; got != want {
		t.Errorf("state cardinality = %d, want %d", got, want)
	}
	if got, want := r.DimValue(0, 0), "NY"; got != want {
		t.Errorf("DimValue(0,0) = %q, want %q", got, want)
	}
}

func TestBuilderRowArityErrors(t *testing.T) {
	b := NewBuilder("x", "t", []string{"a"}, []string{"m"})
	if err := b.Append("1", []string{"v", "extra"}, []float64{1}); err == nil {
		t.Error("Append with wrong dim arity: want error, got nil")
	}
	if err := b.Append("1", []string{"v"}, []float64{1, 2}); err == nil {
		t.Error("Append with wrong measure arity: want error, got nil")
	}
}

func TestBuilderFinishTwice(t *testing.T) {
	b := NewBuilder("x", "t", nil, nil)
	if _, err := b.Finish(); err != nil {
		t.Fatalf("first Finish: %v", err)
	}
	if _, err := b.Finish(); err == nil {
		t.Error("second Finish: want error, got nil")
	}
}

func TestBuilderDuplicateNames(t *testing.T) {
	b := NewBuilder("x", "t", []string{"a", "a"}, nil)
	_ = b.Append("1", []string{"u", "v"}, nil)
	if _, err := b.Finish(); err == nil {
		t.Error("duplicate dimension name: want error, got nil")
	}
	b2 := NewBuilder("x", "t", nil, []string{"m", "m"})
	_ = b2.Append("1", nil, []float64{1, 2})
	if _, err := b2.Finish(); err == nil {
		t.Error("duplicate measure name: want error, got nil")
	}
}

func TestExplicitTimeOrder(t *testing.T) {
	b := NewBuilder("x", "week", nil, []string{"m"})
	b.SetTimeOrder([]string{"w9", "w10", "w11"})
	for _, w := range []string{"w10", "w9", "w11"} {
		if err := b.Append(w, nil, []float64{1}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := r.TimeLabels(); !reflect.DeepEqual(got, []string{"w9", "w10", "w11"}) {
		t.Errorf("TimeLabels = %v, want explicit order", got)
	}
}

func TestExplicitTimeOrderUnknownLabel(t *testing.T) {
	b := NewBuilder("x", "week", nil, []string{"m"})
	b.SetTimeOrder([]string{"w1"})
	_ = b.Append("w2", nil, []float64{1})
	if _, err := b.Finish(); err == nil {
		t.Error("unknown time label: want error, got nil")
	}
}

func TestExplicitTimeOrderDuplicateLabel(t *testing.T) {
	b := NewBuilder("x", "week", nil, []string{"m"})
	b.SetTimeOrder([]string{"w1", "w1"})
	_ = b.Append("w1", nil, []float64{1})
	if _, err := b.Finish(); err == nil {
		t.Error("duplicate time label in order: want error, got nil")
	}
}

func TestAggregateSeries(t *testing.T) {
	r := buildSales(t)
	sc := r.AggregateSeries(0)
	wantSum := []float64{22, 15, 19}
	wantCnt := []float64{3, 2, 3}
	for i := range sc {
		if sc[i].Sum != wantSum[i] || sc[i].Count != wantCnt[i] {
			t.Errorf("day %d: got (%.0f,%.0f), want (%.0f,%.0f)",
				i, sc[i].Sum, sc[i].Count, wantSum[i], wantCnt[i])
		}
	}
	vals := Values(Sum, sc)
	if !reflect.DeepEqual(vals, wantSum) {
		t.Errorf("Values(Sum) = %v, want %v", vals, wantSum)
	}
	cnt := Values(Count, sc)
	if !reflect.DeepEqual(cnt, wantCnt) {
		t.Errorf("Values(Count) = %v, want %v", cnt, wantCnt)
	}
	avg := Values(Avg, sc)
	for i := range avg {
		want := wantSum[i] / wantCnt[i]
		if avg[i] != want {
			t.Errorf("Values(Avg)[%d] = %g, want %g", i, avg[i], want)
		}
	}
}

func TestAggregateSeriesWhere(t *testing.T) {
	r := buildSales(t)
	c, err := NewConjunction(r, map[string]string{"state": "NY"})
	if err != nil {
		t.Fatalf("NewConjunction: %v", err)
	}
	sc := r.AggregateSeriesWhere(0, c)
	wantSum := []float64{15, 12, 6}
	for i := range sc {
		if sc[i].Sum != wantSum[i] {
			t.Errorf("NY day %d sum = %g, want %g", i, sc[i].Sum, wantSum[i])
		}
	}
}

func TestAvgOfEmptySliceIsZero(t *testing.T) {
	if got := Avg.Eval(0, 0); got != 0 {
		t.Errorf("Avg.Eval(0,0) = %g, want 0", got)
	}
}

func TestAggFuncStringAndParse(t *testing.T) {
	for _, f := range []AggFunc{Sum, Count, Avg} {
		parsed, err := ParseAggFunc(f.String())
		if err != nil {
			t.Fatalf("ParseAggFunc(%q): %v", f.String(), err)
		}
		if parsed != f {
			t.Errorf("round trip %v -> %v", f, parsed)
		}
	}
	if _, err := ParseAggFunc("MEDIAN"); err == nil {
		t.Error("ParseAggFunc(MEDIAN): want error, got nil")
	}
	if got := AggFunc(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown AggFunc String = %q", got)
	}
}

func TestConjunctionBasics(t *testing.T) {
	r := buildSales(t)
	c, err := NewConjunction(r, map[string]string{"category": "beer", "state": "NY"})
	if err != nil {
		t.Fatalf("NewConjunction: %v", err)
	}
	if got, want := c.Order(), 2; got != want {
		t.Errorf("Order = %d, want %d", got, want)
	}
	// Canonical order sorts by dim index: state (0) before category (1).
	if c[0].Dim != 0 || c[1].Dim != 1 {
		t.Errorf("conjunction not canonical: %+v", c)
	}
	if got, want := c.String(r), "state=NY & category=beer"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if !c.Matches(r, 0) { // row 0 is NY beer
		t.Error("Matches(row 0) = false, want true")
	}
	if c.Matches(r, 1) { // row 1 is NY wine
		t.Error("Matches(row 1) = true, want false")
	}
	if !c.HasDim(0) || !c.HasDim(1) {
		t.Error("HasDim: want both dims constrained")
	}
	if v, ok := c.ValueFor(0); !ok || r.Dim(0).Value(v) != "NY" {
		t.Errorf("ValueFor(0) = (%d,%v)", v, ok)
	}
	if _, ok := Conjunction(nil).ValueFor(0); ok {
		t.Error("empty conjunction ValueFor: want ok=false")
	}
}

func TestConjunctionErrors(t *testing.T) {
	r := buildSales(t)
	if _, err := NewConjunction(r, map[string]string{"nope": "x"}); err == nil {
		t.Error("unknown dimension: want error")
	}
	if _, err := NewConjunction(r, map[string]string{"state": "TX"}); err == nil {
		t.Error("unknown value: want error")
	}
}

func TestConjunctionExtendWithout(t *testing.T) {
	r := buildSales(t)
	base, _ := NewConjunction(r, map[string]string{"state": "NY"})
	id, _ := r.Dim(1).ID("wine")
	ext := base.Extend(Pred{Dim: 1, Value: id})
	if got, want := ext.String(r), "state=NY & category=wine"; got != want {
		t.Errorf("Extend = %q, want %q", got, want)
	}
	// Extend must not mutate the receiver.
	if got, want := base.String(r), "state=NY"; got != want {
		t.Errorf("base mutated by Extend: %q", got)
	}
	back := ext.Without(1)
	if got, want := back.String(r), "state=NY"; got != want {
		t.Errorf("Without = %q, want %q", got, want)
	}
	same := ext.Without(99)
	if got, want := same.Key(), ext.Key(); got != want {
		t.Errorf("Without(unconstrained) = %q, want %q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("Extend on constrained dim: want panic")
		}
	}()
	_ = base.Extend(Pred{Dim: 0, Value: 0})
}

func TestConjunctionOverlaps(t *testing.T) {
	r := buildSales(t)
	ny, _ := NewConjunction(r, map[string]string{"state": "NY"})
	ca, _ := NewConjunction(r, map[string]string{"state": "CA"})
	beer, _ := NewConjunction(r, map[string]string{"category": "beer"})
	nyBeer, _ := NewConjunction(r, map[string]string{"state": "NY", "category": "beer"})

	cases := []struct {
		a, b Conjunction
		want bool
	}{
		{ny, ca, false},        // same dim, different value
		{ny, beer, true},       // different dims can intersect
		{ny, nyBeer, true},     // ancestor-descendant overlap
		{ca, nyBeer, false},    // disagree on state
		{nil, ny, true},        // root overlaps everything
		{nyBeer, nyBeer, true}, // self overlap
	}
	for i, tc := range cases {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("case %d: Overlaps = %v, want %v", i, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("case %d (sym): Overlaps = %v, want %v", i, got, tc.want)
		}
	}
}

func TestFilter(t *testing.T) {
	r := buildSales(t)
	c, _ := NewConjunction(r, map[string]string{"category": "wine"})
	f, err := Filter(r, c)
	if err != nil {
		t.Fatalf("Filter: %v", err)
	}
	if got, want := f.NumRows(), 4; got != want {
		t.Errorf("filtered NumRows = %d, want %d", got, want)
	}
	// Filter must preserve the full time axis even if some timestamps lose
	// all rows.
	if got, want := f.NumTimestamps(), 3; got != want {
		t.Errorf("filtered NumTimestamps = %d, want %d", got, want)
	}
	sc := f.AggregateSeries(0)
	wantSum := []float64{5, 3, 10}
	for i := range sc {
		if sc[i].Sum != wantSum[i] {
			t.Errorf("wine day %d sum = %g, want %g", i, sc[i].Sum, wantSum[i])
		}
	}
}

func TestGroupBySeries(t *testing.T) {
	r := buildSales(t)
	groups := r.GroupBySeries([]int{0}, 0) // by state
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for key, sc := range groups {
		dims, ids := DecodeGroupKey(key)
		if len(dims) != 1 || dims[0] != 0 {
			t.Fatalf("bad key decode: dims=%v", dims)
		}
		state := r.Dim(0).Value(ids[0])
		var total float64
		for _, s := range sc {
			total += s.Sum
		}
		switch state {
		case "NY":
			if total != 33 {
				t.Errorf("NY total = %g, want 33", total)
			}
		case "CA":
			if total != 23 {
				t.Errorf("CA total = %g, want 23", total)
			}
		default:
			t.Errorf("unexpected state %q", state)
		}
	}
}

func TestGroupKeyRoundTrip(t *testing.T) {
	f := func(rawDims []uint8, rawIDs []uint32) bool {
		n := len(rawDims)
		if len(rawIDs) < n {
			n = len(rawIDs)
		}
		dims := make([]int, n)
		ids := make([]uint32, n)
		for i := 0; i < n; i++ {
			dims[i] = int(rawDims[i])
			ids[i] = rawIDs[i]
		}
		key := groupKey(dims, ids)
		gotDims, gotIDs := DecodeGroupKey(key)
		if n == 0 {
			return len(gotDims) == 0 && len(gotIDs) == 0
		}
		return reflect.DeepEqual(gotDims, dims) && reflect.DeepEqual(gotIDs, ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := buildSales(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, CSVSpec{
		Name:     "sales",
		TimeCol:  "date",
		DimCols:  []string{"state", "category"},
		MeasCols: []string{"units"},
	})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.NumRows() != r.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", back.NumRows(), r.NumRows())
	}
	a := Values(Sum, r.AggregateSeries(0))
	b := Values(Sum, back.AggregateSeries(0))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("round trip series = %v, want %v", b, a)
	}
}

func TestReadCSVErrors(t *testing.T) {
	spec := CSVSpec{TimeCol: "t", DimCols: []string{"d"}, MeasCols: []string{"m"}}
	cases := []struct {
		name, data string
	}{
		{"missing time col", "x,d,m\n1,a,2\n"},
		{"missing dim col", "t,x,m\n1,a,2\n"},
		{"missing measure col", "t,d,x\n1,a,2\n"},
		{"bad float", "t,d,m\n1,a,notanumber\n"},
		{"empty input", ""},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.data), spec); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}

// Property: filtering by a predicate then aggregating equals
// AggregateSeriesWhere on the original relation.
func TestFilterAggregateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	states := []string{"NY", "CA", "TX"}
	cats := []string{"a", "b"}
	b := NewBuilder("rand", "d", []string{"s", "c"}, []string{"m"})
	for i := 0; i < 300; i++ {
		day := string(rune('0' + rng.Intn(5)))
		if err := b.Append(day,
			[]string{states[rng.Intn(3)], cats[rng.Intn(2)]},
			[]float64{float64(rng.Intn(100))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	for _, s := range states {
		c, err := NewConjunction(r, map[string]string{"s": s})
		if err != nil {
			t.Fatalf("NewConjunction(%s): %v", s, err)
		}
		direct := r.AggregateSeriesWhere(0, c)
		filtered, err := Filter(r, c)
		if err != nil {
			t.Fatalf("Filter: %v", err)
		}
		via := filtered.AggregateSeries(0)
		if !reflect.DeepEqual(direct, via) {
			t.Errorf("state %s: filter+aggregate mismatch", s)
		}
	}
}
