package relation

import "testing"

func buildGroupByRel(t *testing.T) *Relation {
	t.Helper()
	b := NewBuilder("g", "d", []string{"s", "c"}, []string{"m"})
	rows := []struct {
		d, s, c string
		m       float64
	}{
		{"1", "a", "x", 1}, {"1", "b", "x", 2}, {"1", "a", "y", 4},
		{"2", "a", "x", 8}, {"2", "b", "y", 16}, {"2", "b", "y", 32},
		{"3", "a", "y", 64}, {"3", "b", "x", 128},
	}
	for _, r := range rows {
		if err := b.Append(r.d, []string{r.s, r.c}, []float64{r.m}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestColumnarGroupByMatchesLegacy(t *testing.T) {
	r := buildGroupByRel(t)
	for _, dims := range [][]int{{0}, {1}, {0, 1}} {
		legacy := r.GroupBySeries(dims, 0)
		col := r.GroupBySeriesColumnar(dims, 0)
		if got, want := col.NumGroups(), len(legacy); got != want {
			t.Fatalf("dims %v: %d groups, want %d", dims, got, want)
		}
		for g := 0; g < col.NumGroups(); g++ {
			key := groupKey(dims, col.GroupIDs(g))
			want, ok := legacy[key]
			if !ok {
				t.Fatalf("dims %v: columnar group %v missing from legacy", dims, col.GroupIDs(g))
			}
			series := col.Series(g)
			for i := range want {
				if series[i] != want[i] {
					t.Fatalf("dims %v group %v t=%d: %+v, want %+v",
						dims, col.GroupIDs(g), i, series[i], want[i])
				}
			}
		}
	}
}

func TestColumnarGroupByOrdering(t *testing.T) {
	r := buildGroupByRel(t)
	col := r.GroupBySeriesColumnar([]int{0, 1}, 0)
	for g := 1; g < col.NumGroups(); g++ {
		prev, cur := col.GroupIDs(g-1), col.GroupIDs(g)
		less := false
		for i := range prev {
			if prev[i] != cur[i] {
				less = prev[i] < cur[i]
				break
			}
		}
		if !less {
			t.Fatalf("groups %d/%d out of order: %v !< %v", g-1, g, prev, cur)
		}
	}
}

func TestGroupByPlanSharedArena(t *testing.T) {
	r := buildGroupByRel(t)
	subsets := [][]int{{0}, {1}, {0, 1}}
	plans := make([]*GroupByPlan, len(subsets))
	total := 0
	for i, dims := range subsets {
		plans[i] = r.PlanGroupBy(dims, 0)
		total += plans[i].NumGroups()
	}
	T := r.NumTimestamps()
	arena := make([]SumCount, total*T)
	off := 0
	for i, p := range plans {
		gs := p.Fill(arena[off : off+p.NumGroups()*T])
		off += p.NumGroups() * T
		want := r.GroupBySeriesColumnar(subsets[i], 0)
		if gs.NumGroups() != want.NumGroups() {
			t.Fatalf("subset %v: %d groups via shared arena, want %d",
				subsets[i], gs.NumGroups(), want.NumGroups())
		}
		for g := 0; g < gs.NumGroups(); g++ {
			for tt := 0; tt < T; tt++ {
				if gs.Series(g)[tt] != want.Series(g)[tt] {
					t.Fatalf("subset %v group %d t=%d mismatch", subsets[i], g, tt)
				}
			}
		}
	}
}

// TestGroupByFallbackPath forces the byte-string keyed fallback and checks
// it agrees with the packed path on the same data.
func TestGroupByFallbackPath(t *testing.T) {
	r := buildGroupByRel(t)
	dims := []int{0, 1}
	packed := r.GroupBySeriesColumnar(dims, 0)

	p := r.PlanGroupBy(dims, 0)
	if !p.packed {
		t.Fatal("small relation should plan packed")
	}
	fp := r.planGroupBy(dims, 0, true)
	if fp.packed {
		t.Fatal("forced fallback plan is still packed")
	}
	got := fp.Fill(make([]SumCount, fp.NumGroups()*r.NumTimestamps()))

	if got.NumGroups() != packed.NumGroups() {
		t.Fatalf("fallback %d groups, packed %d", got.NumGroups(), packed.NumGroups())
	}
	for g := 0; g < got.NumGroups(); g++ {
		for tt := 0; tt < got.T; tt++ {
			if got.Series(g)[tt] != packed.Series(g)[tt] {
				t.Fatalf("group %d t=%d: fallback %+v, packed %+v",
					g, tt, got.Series(g)[tt], packed.Series(g)[tt])
			}
		}
	}
}

// TestGroupByEmptyDims: no grouped dimensions degenerates to the single
// grand-total group, matching the legacy kernel's one ""-keyed group.
func TestGroupByEmptyDims(t *testing.T) {
	r := buildGroupByRel(t)
	legacy := r.GroupBySeries(nil, 0)
	col := r.GroupBySeriesColumnar(nil, 0)
	if len(legacy) != 1 || col.NumGroups() != 1 {
		t.Fatalf("grand total: legacy %d groups, columnar %d, want 1 and 1",
			len(legacy), col.NumGroups())
	}
	if got := col.GroupIDs(0); len(got) != 0 {
		t.Fatalf("grand-total group ids = %v, want empty", got)
	}
	want := legacy[""]
	for i := range want {
		if col.Series(0)[i] != want[i] {
			t.Fatalf("grand total t=%d: %+v, want %+v", i, col.Series(0)[i], want[i])
		}
	}
}

// TestGroupBySeriesSteadyStateAllocs proves the legacy fallback kernel no
// longer allocates per row: doubling the row count (same groups) must not
// change the allocation count, which stays proportional to the number of
// distinct groups only.
func TestGroupBySeriesSteadyStateAllocs(t *testing.T) {
	build := func(reps int) *Relation {
		b := NewBuilder("g", "d", []string{"s", "c"}, []string{"m"})
		for rep := 0; rep < reps; rep++ {
			for _, row := range []struct {
				d, s, c string
				m       float64
			}{
				{"1", "a", "x", 1}, {"1", "b", "y", 2},
				{"2", "a", "x", 3}, {"2", "b", "y", 4},
			} {
				if err := b.Append(row.d, []string{row.s, row.c}, []float64{row.m}); err != nil {
					t.Fatal(err)
				}
			}
		}
		r, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	small, large := build(50), build(100)
	dims := []int{0, 1}
	allocsSmall := testing.AllocsPerRun(20, func() { small.GroupBySeries(dims, 0) })
	allocsLarge := testing.AllocsPerRun(20, func() { large.GroupBySeries(dims, 0) })
	if allocsLarge != allocsSmall {
		t.Fatalf("GroupBySeries allocs scale with rows: %v allocs at 200 rows vs %v at 400",
			allocsSmall, allocsLarge)
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]uint{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 256: 8, 257: 9, 65536: 16}
	for card, want := range cases {
		if got := bitsFor(card); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", card, got, want)
		}
	}
}

func TestPackConjRoundTrip(t *testing.T) {
	cases := []Conjunction{
		nil,
		{{Dim: 0, Value: 0}},
		{{Dim: 15, Value: 65535}},
		{{Dim: 0, Value: 12}, {Dim: 3, Value: 900}},
		{{Dim: 1, Value: 1}, {Dim: 2, Value: 65535}, {Dim: 15, Value: 0}},
	}
	for _, c := range cases {
		k, ok := PackConj(c)
		if !ok {
			t.Fatalf("PackConj(%v): not packable", c)
		}
		got := k.Unpack()
		if got.Key() != c.Key() {
			t.Errorf("round trip %v -> %v", c, got)
		}
		if k.Order() != len(c) {
			t.Errorf("Order(%v) = %d, want %d", c, k.Order(), len(c))
		}
	}
	// Out-of-range inputs must refuse to pack rather than corrupt.
	for _, c := range []Conjunction{
		{{Dim: 16, Value: 0}},
		{{Dim: 0, Value: 65536}},
		{{Dim: 0, Value: 0}, {Dim: 1, Value: 0}, {Dim: 2, Value: 0}, {Dim: 3, Value: 0}},
	} {
		if _, ok := PackConj(c); ok {
			t.Errorf("PackConj(%v): want not-packable", c)
		}
	}
}

// FuzzPackConj checks that every packable conjunction survives a
// pack/unpack round trip and that distinct conjunctions get distinct keys.
func FuzzPackConj(f *testing.F) {
	f.Add(uint8(1), uint16(0), uint8(2), uint16(77), uint8(15), uint16(65535), uint8(3))
	f.Add(uint8(0), uint16(1), uint8(0), uint16(1), uint8(0), uint16(1), uint8(1))
	f.Add(uint8(5), uint16(500), uint8(9), uint16(9), uint8(12), uint16(3), uint8(2))
	f.Fuzz(func(t *testing.T, d0 uint8, v0 uint16, d1 uint8, v1 uint16, d2 uint8, v2 uint16, n uint8) {
		dims := []int{int(d0 % 16), int(d1 % 16), int(d2 % 16)}
		vals := []uint32{uint32(v0), uint32(v1), uint32(v2)}
		order := int(n % 4)
		var c Conjunction
		seen := map[int]bool{}
		for i := 0; i < order; i++ {
			if seen[dims[i]] {
				continue // conjunctions constrain each dimension once
			}
			seen[dims[i]] = true
			c = append(c, Pred{Dim: dims[i], Value: vals[i]})
		}
		c.normalize()
		k, ok := PackConj(c)
		if !ok {
			t.Fatalf("PackConj(%v): in-range conjunction not packable", c)
		}
		got := k.Unpack()
		if got.Key() != c.Key() {
			t.Fatalf("round trip %v -> %v (key %x)", c, got, uint64(k))
		}
		k2, _ := PackConj(got)
		if k2 != k {
			t.Fatalf("re-pack %v: %x != %x", got, uint64(k2), uint64(k))
		}
	})
}
