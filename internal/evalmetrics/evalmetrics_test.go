package evalmetrics

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistancePercentExactMatch(t *testing.T) {
	truth := []int{0, 30, 60, 99}
	if got := DistancePercent(truth, truth, 100); got != 0 {
		t.Errorf("exact match distance = %g, want 0", got)
	}
}

func TestDistancePercentDisplacement(t *testing.T) {
	truth := []int{0, 30, 60, 99}
	got := []int{0, 32, 55, 99}
	// Displacement 2 + 5 = 7, segments = 3, n = 100: 100·7/300.
	want := 100.0 * 7 / 300
	if d := DistancePercent(got, truth, 100); math.Abs(d-want) > 1e-9 {
		t.Errorf("distance = %g, want %g", d, want)
	}
}

func TestDistancePercentMismatchedK(t *testing.T) {
	truth := []int{0, 30, 60, 99} // 3 segments
	got := []int{0, 30, 99}       // 2 segments: one truth cut unmatched
	// Matching 30↔30 costs 0; unmatched cut 60 costs n=100; denom 3·100.
	want := 100.0 * 100 / 300
	if d := DistancePercent(got, truth, 100); math.Abs(d-want) > 1e-9 {
		t.Errorf("distance = %g, want %g", d, want)
	}
	// Symmetric case: extra cut in output.
	d1 := DistancePercent(truth, got, 100)
	if math.Abs(d1-want) > 1e-9 {
		t.Errorf("reverse distance = %g, want %g", d1, want)
	}
}

func TestDistancePercentTrivialSegmentations(t *testing.T) {
	if got := DistancePercent([]int{0, 99}, []int{0, 99}, 100); got != 0 {
		t.Errorf("K=1 vs K=1 distance = %g, want 0", got)
	}
}

func TestDistancePercentSymmetricProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seedA, seedB uint8) bool {
		n := 100
		ka := 2 + int(seedA)%5
		kb := 2 + int(seedB)%5
		a := RandomScheme(rng, n, ka)
		b := RandomScheme(rng, n, kb)
		da := DistancePercent(a, b, n)
		db := DistancePercent(b, a, n)
		return math.Abs(da-db) < 1e-9 && da >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRandomScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(8)
		s := RandomScheme(rng, 100, k)
		if len(s) != k+1 {
			t.Fatalf("scheme has %d cuts, want %d", len(s), k+1)
		}
		if s[0] != 0 || s[len(s)-1] != 99 {
			t.Fatalf("scheme endpoints wrong: %v", s)
		}
		if !sort.IntsAreSorted(s) {
			t.Fatalf("scheme not sorted: %v", s)
		}
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				t.Fatalf("duplicate cut in %v", s)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("K too large should panic")
		}
	}()
	RandomScheme(rng, 5, 10)
}

func TestGroundTruthRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := []int{0, 50, 99}
	// Objective that the truth minimizes uniquely: distance of the
	// interior cut from 50.
	objective := func(cuts []int) float64 {
		var c float64
		for _, p := range cuts[1 : len(cuts)-1] {
			c += math.Abs(float64(p - 50))
		}
		return c
	}
	rank := GroundTruthRank(objective, truth, 100, 500, rng)
	if rank != 1 {
		t.Errorf("rank = %d, want 1 for a uniquely optimal truth", rank)
	}
	// Inverted objective: almost everything beats the truth.
	inverted := func(cuts []int) float64 { return -objective(cuts) }
	rank = GroundTruthRank(inverted, truth, 100, 500, rng)
	if rank < 400 {
		t.Errorf("rank = %d, want near 501 for a pessimal truth", rank)
	}
}

func TestCompetitionRanks(t *testing.T) {
	got := CompetitionRanks([]float64{3, 1, 2})
	want := []float64{3, 1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ranks = %v, want %v", got, want)
	}
	// Ties share the smallest rank of their group ("1224" ranking).
	got = CompetitionRanks([]float64{1, 1, 5, 2})
	want = []float64{1, 1, 4, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tied ranks = %v, want %v", got, want)
	}
	if got := CompetitionRanks(nil); len(got) != 0 {
		t.Errorf("empty ranks = %v", got)
	}
}
