// Package evalmetrics implements the evaluation measures of Sections 4.2.2
// and 7.3: the ground-truth-rank protocol that compares variance designs,
// and the normalized segmentation edit distance ("distance percent") that
// compares segmentation outputs against ground truth.
package evalmetrics

import (
	"math/rand"
	"sort"
)

// DistancePercent computes the paper's distance percent (Section 7.3)
// between a produced segmentation and the ground truth. Both arguments
// are full cut lists including the endpoints (the segment.Scheme.Cuts
// shape); n is the series length.
//
// The interior cuts are aligned by a monotone minimum-cost matching
// (plain in-order pairing when both sides have the same K, which is how
// the experiments run); each matched pair costs |c − ĉ| and each
// unmatched cut costs n (the worst possible displacement). The total is
// normalized by K and n and scaled to percent:
//
//	100 · cost / (max(K_truth, K_output) · n)
func DistancePercent(got, truth []int, n int) float64 {
	g := interior(got)
	tr := interior(truth)
	segs := len(tr) + 1
	if len(g)+1 > segs {
		segs = len(g) + 1
	}
	if segs <= 1 || n <= 0 {
		if len(g) == 0 && len(tr) == 0 {
			return 0
		}
	}
	cost := alignCost(g, tr, float64(n))
	denom := float64(segs) * float64(n)
	if denom == 0 {
		return 0
	}
	return 100 * cost / denom
}

// interior strips the two endpoint entries from a full cut list.
func interior(cuts []int) []int {
	if len(cuts) <= 2 {
		return nil
	}
	out := make([]int, len(cuts)-2)
	copy(out, cuts[1:len(cuts)-1])
	sort.Ints(out)
	return out
}

// alignCost computes the minimum-cost monotone alignment between two
// sorted cut lists, with per-pair cost |a−b| and gap cost for unmatched
// cuts.
func alignCost(a, b []int, gap float64) float64 {
	la, lb := len(a), len(b)
	// dp[i][j]: cost of aligning a[:i] with b[:j].
	dp := make([][]float64, la+1)
	for i := range dp {
		dp[i] = make([]float64, lb+1)
	}
	for i := 1; i <= la; i++ {
		dp[i][0] = float64(i) * gap
	}
	for j := 1; j <= lb; j++ {
		dp[0][j] = float64(j) * gap
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			match := dp[i-1][j-1] + absf(float64(a[i-1]-b[j-1]))
			skipA := dp[i-1][j] + gap
			skipB := dp[i][j-1] + gap
			dp[i][j] = minf(match, minf(skipA, skipB))
		}
	}
	return dp[la][lb]
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// RandomScheme samples a uniformly random K-segmentation of an n-point
// series: K−1 distinct interior cut positions plus the endpoints.
// It panics when K−1 exceeds the number of interior positions.
func RandomScheme(rng *rand.Rand, n, k int) []int {
	if k-1 > n-2 {
		panic("evalmetrics: K too large for series length")
	}
	perm := rng.Perm(n - 2)
	cuts := make([]int, 0, k+1)
	cuts = append(cuts, 0)
	for _, p := range perm[:k-1] {
		cuts = append(cuts, p+1)
	}
	cuts = append(cuts, n-1)
	sort.Ints(cuts)
	return cuts
}

// GroundTruthRank implements the Figure 6 protocol for one metric on one
// dataset: sample `samples` random segmentation schemes with the ground
// truth's K and return the rank of the ground truth's objective value
// among them — 1 + the number of sampled schemes with strictly lower
// total variance. Lower is better; 1 means no sampled scheme beats the
// ground truth. objective evaluates Σ|P_i|var(P_i) for a full cut list.
func GroundTruthRank(objective func(cuts []int) float64, truth []int, n, samples int, rng *rand.Rand) int {
	k := len(truth) - 1
	truthVar := objective(truth)
	rank := 1
	for s := 0; s < samples; s++ {
		cand := RandomScheme(rng, n, k)
		if objective(cand) < truthVar-1e-12 {
			rank++
		}
	}
	return rank
}

// CompetitionRanks converts raw scores (lower is better) into standard
// competition ranks ("1224"): ties share the smallest rank of their
// group, so when every metric finds the ground truth optimal they all
// rank 1st, matching the Figure 6 narrative at SNR = 50.
func CompetitionRanks(scores []float64) []float64 {
	type idxScore struct {
		idx int
		v   float64
	}
	s := make([]idxScore, len(scores))
	for i, v := range scores {
		s[i] = idxScore{i, v}
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].v < s[j].v })
	out := make([]float64, len(scores))
	i := 0
	for i < len(s) {
		j := i
		for j+1 < len(s) && s[j+1].v == s[i].v {
			j++
		}
		// Positions i..j share the rank of the first of the group.
		for k := i; k <= j; k++ {
			out[s[k].idx] = float64(i + 1)
		}
		i = j + 1
	}
	return out
}
