package explain

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/timeseries"
)

// smoothState holds the smoothed views of an arena-backed universe: the
// smoothed candidate arena and overall series the engine actually scores,
// plus (for streaming universes) the raw prefix sums that let Append
// recompute just the tail window with arithmetic identical to a
// from-scratch moving average.
type smoothState struct {
	window int
	arena  []relation.SumCount // smoothed candidate series, stride arenaCap
	total  []relation.SumCount // smoothed overall series
	// prefix[id*(arenaCap+1)+i] is the raw prefix sum of candidate id's
	// series over [0, i); nil unless the universe streams.
	prefix    []relation.SumCount
	totPrefix []relation.SumCount // raw prefix sums of the overall series
}

// fillPrefix extends prefix in place: prefix[i+1] = prefix[i] + raw[i]
// for i in [from, len(raw)), component-wise. Sequential per-component
// addition from the front is exactly how timeseries.MovingAverage builds
// its prefix array, which keeps incremental re-smoothing bit-identical to
// a from-scratch smooth.
func fillPrefix(prefix, raw []relation.SumCount, from int) {
	for i := from; i < len(raw); i++ {
		p := prefix[i]
		p.Sum += raw[i].Sum
		p.Count += raw[i].Count
		prefix[i+1] = p
	}
}

// smoothRange writes out[i] for i in [from, T): the centered moving
// average with edge clamping, derived from the raw prefix sums with the
// same arithmetic as timeseries.MovingAverage.
func smoothRange(out, prefix []relation.SumCount, T, window, from int) {
	half := window / 2
	for i := from; i < T; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= T {
			hi = T - 1
		}
		d := float64(hi - lo + 1)
		out[i] = relation.SumCount{
			Sum:   (prefix[hi+1].Sum - prefix[lo].Sum) / d,
			Count: (prefix[hi+1].Count - prefix[lo].Count) / d,
		}
	}
}

// Smooth applies a centered moving average of the given window to the
// overall series and to every candidate's series (both the sum and count
// components, so every aggregate stays decomposable). The paper applies
// this to very fuzzy datasets before explaining them (Section 7.4).
// window <= 1 is a no-op. Smoothing is applied to the Universe rather
// than the raw relation so the relation stays exact for other queries.
//
// On an arena-backed universe the smoothed series live in a second
// candidate-major arena; the raw arena (and, when streaming, its prefix
// sums) are retained so Append can extend the series and re-smooth only
// the tail window each new point perturbs.
func (u *Universe) Smooth(window int) {
	if window <= 1 {
		return
	}
	if u.raw == nil {
		// Derived universes (e.g. time slices) have no arena; smooth the
		// individual series the legacy way.
		u.total = smoothSeries(u.total, window)
		for _, c := range u.cands {
			c.Series = smoothSeries(c.Series, window)
		}
		return
	}
	T := len(u.total)
	capA := u.arenaCap
	sm := &smoothState{window: window}
	sm.totPrefix = make([]relation.SumCount, T+1, capA+1)
	fillPrefix(sm.totPrefix, u.rawTotal, 0)
	sm.total = make([]relation.SumCount, T, capA)
	smoothRange(sm.total, sm.totPrefix, T, window, 0)

	sm.arena = make([]relation.SumCount, len(u.raw))
	var scratch []relation.SumCount
	if u.stream != nil {
		sm.prefix = make([]relation.SumCount, (len(u.raw)/capA)*(capA+1))
	} else {
		scratch = make([]relation.SumCount, T+1)
	}
	for id, c := range u.cands {
		rawS := u.raw[id*capA : id*capA+T]
		pref := scratch
		if sm.prefix != nil {
			pref = sm.prefix[id*(capA+1) : id*(capA+1)+T+1]
		}
		fillPrefix(pref, rawS, 0)
		smoothRange(sm.arena[id*capA:id*capA+T], pref, T, window, 0)
		c.Series = sm.arena[id*capA : id*capA+T : (id+1)*capA]
	}
	u.total = sm.total
	u.smooth = sm
	if u.stream == nil {
		// One-shot universes never append; drop the raw arena so memory
		// matches the pre-streaming layout (one arena's worth). When the
		// arena aliased a snapshot mapping, release the mapping too — a
		// smoothed universe is fully resident and no slice points into
		// the mapped bytes anymore.
		u.raw = nil
		if u.backing != nil {
			u.backing.Close()
			u.backing = nil
		}
		u.arenaMapped = false
	}
}

func smoothSeries(sc []relation.SumCount, window int) []relation.SumCount {
	sums := make([]float64, len(sc))
	counts := make([]float64, len(sc))
	for i, s := range sc {
		sums[i] = s.Sum
		counts[i] = s.Count
	}
	sums = timeseries.MovingAverage(sums, window)
	counts = timeseries.MovingAverage(counts, window)
	out := make([]relation.SumCount, len(sc))
	for i := range out {
		out[i] = relation.SumCount{Sum: sums[i], Count: counts[i]}
	}
	return out
}

// SliceTime returns a view of the universe restricted to point positions
// [from, to] inclusive: the overall and per-candidate series are
// re-sliced, while the candidate set and drill-down adjacency are shared
// with the receiver. It supports explaining a user-selected sub-period
// without re-running enumeration.
func (u *Universe) SliceTime(from, to int) (*Universe, error) {
	if from < 0 || to >= len(u.total) || from >= to {
		return nil, fmt.Errorf("explain: invalid time slice [%d, %d] of %d points", from, to, len(u.total))
	}
	out := &Universe{
		rel:       u.rel,
		agg:       u.agg,
		measure:   u.measure,
		explainBy: u.explainBy,
		maxOrder:  u.maxOrder,
		total:     u.total[from : to+1],
		index:     u.index,
		children:  u.children,
		// The drill-down adjacency and ancestor closure are positional
		// over candidate IDs, which a time slice preserves, so the solver
		// can run against the sliced universe directly.
		childrenFlat: u.childrenFlat,
		dimPos:       u.dimPos,
		ancOff:       u.ancOff,
		ancIDs:       u.ancIDs,
	}
	out.cands = make([]*Candidate, len(u.cands))
	for i, c := range u.cands {
		out.cands[i] = &Candidate{ID: c.ID, Conj: c.Conj, Series: c.Series[from : to+1]}
	}
	return out, nil
}
