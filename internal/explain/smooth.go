package explain

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/timeseries"
)

// Smooth applies a centered moving average of the given window to the
// overall series and to every candidate's series (both the sum and count
// components, so every aggregate stays decomposable). The paper applies
// this to very fuzzy datasets before explaining them (Section 7.4).
// window <= 1 is a no-op. Smoothing is applied to the Universe rather
// than the raw relation so the relation stays exact for other queries.
func (u *Universe) Smooth(window int) {
	if window <= 1 {
		return
	}
	u.total = smoothSeries(u.total, window)
	for _, c := range u.cands {
		c.Series = smoothSeries(c.Series, window)
	}
}

func smoothSeries(sc []relation.SumCount, window int) []relation.SumCount {
	sums := make([]float64, len(sc))
	counts := make([]float64, len(sc))
	for i, s := range sc {
		sums[i] = s.Sum
		counts[i] = s.Count
	}
	sums = timeseries.MovingAverage(sums, window)
	counts = timeseries.MovingAverage(counts, window)
	out := make([]relation.SumCount, len(sc))
	for i := range out {
		out[i] = relation.SumCount{Sum: sums[i], Count: counts[i]}
	}
	return out
}

// SliceTime returns a view of the universe restricted to point positions
// [from, to] inclusive: the overall and per-candidate series are
// re-sliced, while the candidate set and drill-down adjacency are shared
// with the receiver. It supports explaining a user-selected sub-period
// without re-running enumeration.
func (u *Universe) SliceTime(from, to int) (*Universe, error) {
	if from < 0 || to >= len(u.total) || from >= to {
		return nil, fmt.Errorf("explain: invalid time slice [%d, %d] of %d points", from, to, len(u.total))
	}
	out := &Universe{
		rel:       u.rel,
		agg:       u.agg,
		measure:   u.measure,
		explainBy: u.explainBy,
		maxOrder:  u.maxOrder,
		total:     u.total[from : to+1],
		index:     u.index,
		children:  u.children,
		// The drill-down adjacency and ancestor closure are positional
		// over candidate IDs, which a time slice preserves, so the solver
		// can run against the sliced universe directly.
		childrenByID: u.childrenByID,
		ancestors:    u.ancestors,
	}
	out.cands = make([]*Candidate, len(u.cands))
	for i, c := range u.cands {
		out.cands[i] = &Candidate{ID: c.ID, Conj: c.Conj, Series: c.Series[from : to+1]}
	}
	return out, nil
}
