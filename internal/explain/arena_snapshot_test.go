package explain

import (
	"bytes"
	"reflect"
	"testing"
	"unsafe"

	"repro/internal/relation"
)

// forceArenaSnapshots drops the v3 size threshold so tiny test universes
// encode in the mappable arena layout, restoring it afterwards.
func forceArenaSnapshots(t *testing.T) {
	t.Helper()
	old := ArenaSnapshotThreshold
	ArenaSnapshotThreshold = 0
	t.Cleanup(func() { ArenaSnapshotThreshold = old })
}

var testHostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func TestUniverseSnapshotArenaRoundTrip(t *testing.T) {
	forceArenaSnapshots(t)
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "region"}, MaxOrder: 2})
	if !u.ArenaSnapshotRaw() {
		t.Fatal("threshold 0 did not select the arena snapshot layout")
	}

	var buf bytes.Buffer
	if err := u.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Stream decode: the copying path, byte-order independent.
	u2, err := ReadUniverseSnapshot(bytes.NewReader(buf.Bytes()), r)
	if err != nil {
		t.Fatal(err)
	}
	universesEquivalent(t, u, u2)
	if u2.ArenaMapped() || u2.MappedBytes() != 0 {
		t.Fatal("stream decode must materialize the arena on the heap")
	}

	// In-memory decode with aliasing allowed: zero-copy on little-endian
	// hosts, transparent copy fallback elsewhere.
	sr := relation.NewSnapReaderBytes(buf.Bytes())
	u3, err := DecodeUniverseSnapshotAlias(sr, r, true)
	if err != nil {
		t.Fatal(err)
	}
	universesEquivalent(t, u, u3)
	if testHostLittleEndian {
		if !u3.ArenaMapped() {
			t.Fatal("aligned little-endian payload did not alias the arena")
		}
		want := int64(u.NumCandidates()) * int64(u.NumTimestamps()) * 16
		if got := u3.MappedBytes(); got != want {
			t.Fatalf("MappedBytes = %d, want %d", got, want)
		}
		// The aliased series must point into the payload, not the heap.
		payload := buf.Bytes()
		p := uintptr(unsafe.Pointer(&u3.Candidate(0).Series[0]))
		lo := uintptr(unsafe.Pointer(&payload[0]))
		hi := lo + uintptr(len(payload))
		if p < lo || p >= hi {
			t.Fatal("aliased arena does not point into the snapshot payload")
		}
		if mapped := u3.ApproxBytes(); mapped >= u2.ApproxBytes() {
			t.Fatalf("mapped universe ApproxBytes = %d, want < heap universe's %d (arena excluded)", mapped, u2.ApproxBytes())
		}
	}
}

// TestArenaAliasSmoothReleasesMapping: smoothing a one-shot universe
// copies into heap smoothing state and must release the aliased arena,
// leaving a fully resident universe with correct series.
func TestArenaAliasSmoothReleasesMapping(t *testing.T) {
	if !testHostLittleEndian {
		t.Skip("aliasing requires a little-endian host")
	}
	forceArenaSnapshots(t)
	r := buildCovidMini(t)
	cfg := Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "region"}, MaxOrder: 2}
	u := newUniverse(t, r, cfg)
	var buf bytes.Buffer
	if err := u.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	u2, err := DecodeUniverseSnapshotAlias(relation.NewSnapReaderBytes(buf.Bytes()), r, true)
	if err != nil {
		t.Fatal(err)
	}
	if !u2.ArenaMapped() {
		t.Fatal("decode did not alias the arena")
	}
	closed := false
	u2.SetBacking(closerFunc(func() error { closed = true; return nil }))
	u2.Smooth(3)
	if u2.ArenaMapped() || u2.MappedBytes() != 0 {
		t.Fatal("smoothing left the universe claiming a mapped arena")
	}
	if !closed {
		t.Fatal("smoothing did not release the mapping's backing")
	}
	ref := newUniverse(t, r, cfg)
	ref.Smooth(3)
	for id := 0; id < ref.NumCandidates(); id++ {
		if !reflect.DeepEqual(ref.Candidate(id).Series, u2.Candidate(id).Series) {
			t.Fatalf("candidate %d smoothed series differ between built and alias-restored universes", id)
		}
	}
}

type closerFunc func() error

func (f closerFunc) Close() error { return f() }

// TestArenaSnapshotRawThreshold pins the layout choice: small universes
// keep the compact v2 encoding, threshold-crossing ones switch to the
// raw arena, and smoothed or derived universes never qualify.
func TestArenaSnapshotRawThreshold(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "region"}, MaxOrder: 2})
	if u.ArenaSnapshotRaw() {
		t.Fatal("tiny universe selected the arena layout under the default threshold")
	}
	old := ArenaSnapshotThreshold
	defer func() { ArenaSnapshotThreshold = old }()
	ArenaSnapshotThreshold = int64(u.NumCandidates()) * int64(u.NumTimestamps()) * 16
	if !u.ArenaSnapshotRaw() {
		t.Fatal("universe exactly at the threshold must select the arena layout")
	}
	ArenaSnapshotThreshold = 0
	u.Smooth(3)
	if u.ArenaSnapshotRaw() {
		t.Fatal("smoothed universe must never report an arena-snapshot layout")
	}
}
