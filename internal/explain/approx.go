package explain

import (
	"math"
	"sort"

	"repro/internal/relation"
)

// This file implements the candidate-axis side of the anytime approximate
// explanation path: a cheap per-candidate upper bound on the difference
// score any segment can ever assign, the deterministic top-M selection
// that bound induces, and the exact residual ("other") series of a
// selected explanation set. The budgeted solver mode in core composes
// these with the restricted Cascading Analysts solve to keep per-segment
// cost proportional to the kept candidates instead of the full candidate
// count ε.

// ContributionBounds returns, per candidate, an upper bound on the
// absolute-change difference score γ(E, c, t) over EVERY segment [c, t].
//
// Definition 3.2 rewrites to γ(E, c, t) = |φ_E(t) − φ_E(c)| with
// φ_E(x) = f(tot_x) − f(tot_x − e_x), the candidate's effect on the
// aggregate at a single timestamp. The range max_x φ_E − min_x φ_E
// therefore dominates γ at any endpoint pair, independent of the
// segmentation — which is what lets a pruning threshold translate into a
// per-segment attribution-error bound. For SUM the bound degenerates to
// the range of the candidate's raw series.
//
// The bound is computed against the universe's active (possibly smoothed)
// series views, the same state Gamma scores, in O(ε·n) total.
func (u *Universe) ContributionBounds() []float64 {
	n := len(u.total)
	fTot := make([]float64, n)
	for t, sc := range u.total {
		fTot[t] = u.agg.Eval(sc.Sum, sc.Count)
	}
	out := make([]float64, len(u.cands))
	for id, c := range u.cands {
		mn, mx := math.Inf(1), math.Inf(-1)
		for t, e := range c.Series {
			rem := u.total[t].Sub(e)
			phi := fTot[t] - u.agg.Eval(rem.Sum, rem.Count)
			if phi < mn {
				mn = phi
			}
			if phi > mx {
				mx = phi
			}
		}
		out[id] = mx - mn
	}
	return out
}

// SelectTopBounds picks the ids of the (at most max) candidates with the
// largest bounds among the eligible set (allowed nil means every
// candidate), breaking ties by ascending id so the selection is
// deterministic. It returns the kept ids in ascending id order, and
// theta: the largest bound among eligible candidates that were NOT kept
// (0 when nothing was pruned) — the quantity every pruned candidate's γ
// is bounded by.
func SelectTopBounds(bounds []float64, allowed []bool, max int) (ids []int, theta float64) {
	order := make([]int, 0, len(bounds))
	for id := range bounds {
		if allowed == nil || allowed[id] {
			order = append(order, id)
		}
	}
	if max < 0 {
		max = 0
	}
	if len(order) <= max {
		sort.Ints(order)
		return order, 0
	}
	sort.Slice(order, func(i, j int) bool {
		bi, bj := bounds[order[i]], bounds[order[j]]
		if bi != bj {
			return bi > bj
		}
		return order[i] < order[j]
	})
	theta = bounds[order[max]]
	ids = append([]int(nil), order[:max]...)
	sort.Ints(ids)
	return ids, theta
}

// ResidualSeries returns the exact aggregated series of everything the
// given non-overlapping explanations do NOT cover: per timestamp, the
// overall decomposed state minus the explanations' states. Because the
// Cascading Analysts selection is guaranteed non-overlapping, the
// subtraction is the true decomposed state of the complement slice for
// any decomposable aggregate, so the reported trendlines plus this
// residual reproduce the overall series exactly — totals stay exact no
// matter how many candidates were pruned.
func (u *Universe) ResidualSeries(ids []int) []relation.SumCount {
	out := append([]relation.SumCount(nil), u.total...)
	for _, id := range ids {
		for t, e := range u.cands[id].Series {
			out[t] = out[t].Sub(e)
		}
	}
	return out
}
