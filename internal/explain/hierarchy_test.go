package explain

import (
	"math"
	"sort"
	"testing"

	"repro/internal/relation"
	"repro/internal/synth"
)

// taxUniverse builds a small two-level taxonomy (state → county) plus a
// flat channel dimension: TX{hou, aus} and CA{la, sf}, each county
// selling over web and store with distinct trends.
func taxUniverse(t *testing.T, explainBy []string, maxOrder int) *Universe {
	t.Helper()
	b := relation.NewBuilder("tax", "T", []string{"state", "county", "channel"}, []string{"sales"})
	labels := []string{"t0", "t1", "t2", "t3"}
	b.SetTimeOrder(labels)
	type slice struct {
		state, county, channel string
		vals                   [4]float64
	}
	slices := []slice{
		{"TX", "hou", "web", [4]float64{10, 40, 40, 40}},
		{"TX", "hou", "store", [4]float64{5, 5, 30, 5}},
		{"TX", "aus", "web", [4]float64{8, 8, 8, 8}},
		{"CA", "la", "web", [4]float64{20, 20, 2, 2}},
		{"CA", "la", "store", [4]float64{3, 3, 3, 12}},
		{"CA", "sf", "store", [4]float64{7, 1, 7, 1}},
	}
	for _, s := range slices {
		for i, v := range s.vals {
			if err := b.Append(labels[i], []string{s.state, s.county, s.channel}, []float64{v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniverse(rel, Config{
		Measure: "sales", Agg: relation.Sum,
		ExplainBy: explainBy, MaxOrder: maxOrder,
		Hierarchies: [][]string{{"state", "county"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func conjFor(t *testing.T, u *Universe, kv ...string) relation.Conjunction {
	t.Helper()
	r := u.Relation()
	var conj relation.Conjunction
	for i := 0; i+1 < len(kv); i += 2 {
		d := r.DimIndex(kv[i])
		if d < 0 {
			t.Fatalf("unknown dim %q", kv[i])
		}
		v, ok := r.Dim(d).ID(kv[i+1])
		if !ok {
			t.Fatalf("unknown value %q of %q", kv[i+1], kv[i])
		}
		conj = append(conj, relation.Pred{Dim: d, Value: v})
	}
	sort.Slice(conj, func(i, j int) bool { return conj[i].Dim < conj[j].Dim })
	return conj
}

func mustLookup(t *testing.T, u *Universe, kv ...string) int {
	t.Helper()
	id, ok := u.Lookup(conjFor(t, u, kv...))
	if !ok {
		t.Fatalf("conjunction %v not enumerated", kv)
	}
	return id
}

// TestGroupedEnumeration: subsets holding two levels of one hierarchy are
// never enumerated, single-level and mixed hierarchy/flat conjunctions
// are, and candidates exist at every level.
func TestGroupedEnumeration(t *testing.T) {
	u := taxUniverse(t, []string{"state", "county", "channel"}, 3)
	if !u.HasTaxonomy() {
		t.Fatal("universe should have a taxonomy")
	}
	r := u.Relation()
	sd, cd := r.DimIndex("state"), r.DimIndex("county")
	for id := 0; id < u.NumCandidates(); id++ {
		conj := u.Candidate(id).Conj
		if conj.HasDim(sd) && conj.HasDim(cd) {
			t.Fatalf("mixed-level conjunction enumerated: %s", conj.String(r))
		}
	}
	mustLookup(t, u, "state", "TX")
	mustLookup(t, u, "county", "hou")
	mustLookup(t, u, "county", "hou", "channel", "web")
	mustLookup(t, u, "state", "CA", "channel", "store")
	if _, ok := u.Lookup(conjFor(t, u, "state", "TX", "county", "hou")); ok {
		t.Fatal("(state, county) conjunction should not be enumerated")
	}
}

// TestTaxEdges: every deeper-level candidate is a drill-down child of its
// roll-up, in the same child lists attribute extensions use, and the
// per-(node, dim) lists stay single-mechanism.
func TestTaxEdges(t *testing.T) {
	u := taxUniverse(t, []string{"state", "county", "channel"}, 3)
	r := u.Relation()
	cd := r.DimIndex("county")

	tx := mustLookup(t, u, "state", "TX")
	hou := mustLookup(t, u, "county", "hou")
	aus := mustLookup(t, u, "county", "aus")
	kids := u.ChildrenOf(tx, cd)
	got := map[int]bool{}
	for _, k := range kids {
		got[int(k)] = true
	}
	if !got[hou] || !got[aus] || len(kids) != 2 {
		t.Fatalf("ChildrenOf(TX, county) = %v, want {hou, aus}", kids)
	}

	// Conjunction roll-up: (county=hou & channel=web) drills down from
	// (state=TX & channel=web).
	txWeb := mustLookup(t, u, "state", "TX", "channel", "web")
	houWeb := mustLookup(t, u, "county", "hou", "channel", "web")
	found := false
	for _, k := range u.ChildrenOf(txWeb, cd) {
		if int(k) == houWeb {
			found = true
		}
	}
	if !found {
		t.Fatalf("(county=hou & channel=web) missing from ChildrenOf(state=TX & channel=web, county)")
	}

	// Child lists must stay sorted ascending (the DP's binary searches
	// and the append path rely on it).
	for id := -1; id < u.NumCandidates(); id++ {
		for _, d := range u.ExplainBy() {
			kids := u.ChildrenOf(id, d)
			for i := 1; i < len(kids); i++ {
				if kids[i] <= kids[i-1] {
					t.Fatalf("ChildrenOf(%d, %d) not sorted: %v", id, d, kids)
				}
			}
		}
	}
}

// TestGeneralizedAncestors: the ancestor closure of a conjunction holds
// every drop/keep/roll-up combination — and nothing else.
func TestGeneralizedAncestors(t *testing.T) {
	u := taxUniverse(t, []string{"state", "county", "channel"}, 3)
	houWeb := mustLookup(t, u, "county", "hou", "channel", "web")
	want := map[int]bool{
		mustLookup(t, u, "county", "hou"):                   true,
		mustLookup(t, u, "channel", "web"):                  true,
		mustLookup(t, u, "state", "TX"):                     true,
		mustLookup(t, u, "state", "TX", "channel", "web"):   true,
		mustLookup(t, u, "county", "hou", "channel", "web"): true, // self
	}
	anc := u.AncestorsOf(houWeb)
	got := map[int]bool{houWeb: true}
	for _, a := range anc {
		got[int(a)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("ancestors of (hou & web) = %v, want %v", got, want)
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing ancestor %s", u.Candidate(id).Conj.String(u.Relation()))
		}
	}
}

// TestSingleKeptLevelStaysFlat: with only one hierarchy level among the
// explain-by attributes the taxonomy must not register — enumeration,
// adjacency, and ancestors are the flat path's, bit for bit.
func TestSingleKeptLevelStaysFlat(t *testing.T) {
	u := taxUniverse(t, []string{"county", "channel"}, 2)
	if u.HasTaxonomy() {
		t.Fatal("single kept level must behave flat")
	}
	if NewSubtreeBounds(u) != nil {
		t.Fatal("no selector without a taxonomy")
	}
	if p := u.LevelPath(mustLookup(t, u, "county", "hou")); p != nil {
		t.Fatalf("LevelPath on flat universe = %v, want nil", p)
	}
}

// TestLevelPath: the drill-down path of the deepest hierarchy predicate.
func TestLevelPath(t *testing.T) {
	u := taxUniverse(t, []string{"state", "county", "channel"}, 3)
	cases := []struct {
		kv   []string
		want []string
	}{
		{[]string{"county", "hou", "channel", "web"}, []string{"TX", "hou"}},
		{[]string{"state", "CA"}, []string{"CA"}},
		{[]string{"channel", "web"}, nil},
	}
	for _, c := range cases {
		got := u.LevelPath(mustLookup(t, u, c.kv...))
		if len(got) != len(c.want) {
			t.Fatalf("LevelPath(%v) = %v, want %v", c.kv, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("LevelPath(%v) = %v, want %v", c.kv, got, c.want)
			}
		}
	}
}

// TestSubtreeCapDominance is the pruning soundness property: every
// candidate's cap dominates its own exact bound and the exact bound of
// every DAG descendant, so cutting a subtree at cap ≤ θ never loses a
// candidate scoring above θ.
func TestSubtreeCapDominance(t *testing.T) {
	u := taxUniverse(t, []string{"state", "county", "channel"}, 3)
	sb := NewSubtreeBounds(u)
	if sb == nil {
		t.Fatal("selector should engage for SUM over non-negative sales")
	}
	for id := 0; id < u.NumCandidates(); id++ {
		sb.visit(id)
	}
	var walk func(id int, cap float64)
	walk = func(id int, cap float64) {
		if sb.bounds[id] > cap+1e-9 {
			t.Fatalf("candidate %s: bound %g exceeds ancestor cap %g",
				u.Candidate(id).Conj.String(u.Relation()), sb.bounds[id], cap)
		}
		next := cap
		if sb.caps[id] < next {
			next = sb.caps[id]
		}
		for _, d := range u.ExplainBy() {
			for _, k := range u.ChildrenOf(id, d) {
				walk(int(k), next)
			}
		}
	}
	for _, d := range u.ExplainBy() {
		for _, k := range u.ChildrenOf(-1, d) {
			walk(int(k), math.Inf(1))
		}
	}

	// The memoized exact bounds equal the flat path's ContributionBounds.
	flat := u.ContributionBounds()
	for id := range flat {
		if math.Abs(flat[id]-sb.bounds[id]) > 1e-9*(1+math.Abs(flat[id])) {
			t.Fatalf("candidate %d: walk bound %g != ContributionBounds %g", id, sb.bounds[id], flat[id])
		}
	}
}

// TestSelectTopSoundness: on a real taxonomy-shaped dataset, SelectTop's
// kept set and theta satisfy the contract the error bound rests on —
// every eligible candidate not kept has exact bound ≤ θ, and θ never
// exceeds the worst kept bound.
func TestSelectTopSoundness(t *testing.T) {
	d, err := synth.Taxonomy(synth.TaxonomyParams{
		Cats: 4, SubcatsPerCat: 3, LeavesPerSubcat: 4, N: 48, Drivers: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUniverse(d.Rel, Config{
		Measure: "sales", Agg: relation.Sum,
		ExplainBy:   []string{"cat", "subcat", "leaf"},
		MaxOrder:    2,
		Hierarchies: [][]string{synth.TaxonomyLevels()},
	})
	if err != nil {
		t.Fatal(err)
	}
	sb := NewSubtreeBounds(u)
	if sb == nil {
		t.Fatal("selector should engage")
	}
	exact := u.ContributionBounds()

	check := func(allowed []bool, max int) {
		t.Helper()
		ids, theta := sb.SelectTop(allowed, max)
		eligible := 0
		for id := range exact {
			if allowed == nil || allowed[id] {
				eligible++
			}
		}
		wantLen := max
		if eligible < wantLen {
			wantLen = eligible
		}
		if len(ids) != wantLen {
			t.Fatalf("max=%d: kept %d ids, want %d", max, len(ids), wantLen)
		}
		kept := make(map[int]bool, len(ids))
		minKept := math.Inf(1)
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				t.Fatalf("ids not ascending: %v", ids)
			}
			if allowed != nil && !allowed[id] {
				t.Fatalf("disallowed id %d kept", id)
			}
			kept[id] = true
			if exact[id] < minKept {
				minKept = exact[id]
			}
		}
		for id := range exact {
			if kept[id] || (allowed != nil && !allowed[id]) {
				continue
			}
			if exact[id] > theta+1e-9 {
				t.Fatalf("max=%d: excluded candidate %d has bound %g > θ %g", max, id, exact[id], theta)
			}
		}
		if len(ids) == max && theta > minKept+1e-9 {
			t.Fatalf("max=%d: θ %g exceeds worst kept bound %g", max, theta, minKept)
		}
	}

	for _, max := range []int{1, 4, 16, 64, u.NumCandidates(), u.NumCandidates() + 10} {
		check(nil, max)
	}
	// An allowed bitmap excludes ids from keeping but their subtrees stay
	// traversable.
	allowed := make([]bool, u.NumCandidates())
	for id := range allowed {
		allowed[id] = id%3 != 0
	}
	for _, max := range []int{4, 32, 128} {
		check(allowed, max)
	}

	// Pruning must actually engage on the taxonomy shape: a small budget
	// should not visit the whole candidate space.
	fresh := NewSubtreeBounds(u)
	fresh.SelectTop(nil, 8)
	if fresh.Visited >= u.NumCandidates() {
		t.Fatalf("best-first walk visited all %d candidates at budget 8 — no pruning", fresh.Visited)
	}
}

// TestNewSubtreeBoundsGating: the selector only engages when the cap is
// sound for the workload.
func TestNewSubtreeBoundsGating(t *testing.T) {
	if sb := NewSubtreeBounds(taxUniverse(t, []string{"state", "county", "channel"}, 3)); sb == nil {
		t.Fatal("SUM over non-negative measure should engage")
	}

	b := relation.NewBuilder("neg", "T", []string{"state", "county"}, []string{"m"})
	b.SetTimeOrder([]string{"t0", "t1"})
	rows := []struct {
		s, c string
		v    [2]float64
	}{
		{"TX", "hou", [2]float64{1, 2}},
		{"TX", "aus", [2]float64{1, -3}},
		{"CA", "la", [2]float64{2, 2}},
	}
	for _, row := range rows {
		for i, v := range row.v {
			if err := b.Append([]string{"t0", "t1"}[i], []string{row.s, row.c}, []float64{v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Measure: "m", Agg: relation.Sum, Hierarchies: [][]string{{"state", "county"}}}
	u, err := NewUniverse(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if NewSubtreeBounds(u) != nil {
		t.Fatal("signed SUM must not engage the subtree selector")
	}
	cfg.Agg = relation.Avg
	u, err = NewUniverse(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if NewSubtreeBounds(u) != nil {
		t.Fatal("AVG must not engage the subtree selector")
	}
	cfg.Agg = relation.Count
	u, err = NewUniverse(rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if NewSubtreeBounds(u) == nil {
		t.Fatal("COUNT should engage the subtree selector")
	}
}
