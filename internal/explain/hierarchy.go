package explain

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// This file makes relation taxonomies first-class in the candidate space.
// When at least two levels of a declared hierarchy appear among the
// explain-by attributes, enumeration switches to grouped roll-up form:
//
//   - subsets holding two levels of one hierarchy are never enumerated —
//     a (state, county) conjunction is redundant because the county
//     determines the state, and excluding it keeps the Cascading Analysts
//     non-overlap reasoning intact (siblings under one parent stay
//     disjoint, mixed-level conjunctions never exist);
//   - each candidate additionally registers as a drill-down child of its
//     taxonomy roll-up (the conjunction with one hierarchy predicate
//     replaced by its parent value at the next kept level), so the DP
//     drills "TX ↓ Houston" level by level through the same adjacency it
//     already walks for attribute extensions;
//   - the ancestor closure generalizes from sub-conjunctions to roll-up
//     generalizations: dropping or coarsening any predicate yields an
//     ancestor, which is exactly the transitive closure of the extended
//     edge set.
//
// With no hierarchies declared (or fewer than two levels kept), every
// structure here is empty and enumeration is bit-identical to the flat
// path.

// hierKept is one declared relation hierarchy restricted to the kept
// levels — those of its level dimensions that appear among the universe's
// explain-by attributes. Only hierarchies with ≥ 2 kept levels register.
type hierKept struct {
	h    *relation.Hierarchy
	kept []int   // relation level indexes kept, coarse → fine
	dims []int   // relation dim index per kept level
	pos  []int32 // explain-by position per kept level
}

// parentVal maps a kept-level-k dictionary id to its ancestor id at kept
// level k−1, composing the relation's adjacent-level parent maps across
// levels the explain-by set skips.
//
//tsexplain:hotpath
func (hk *hierKept) parentVal(k int, v uint32) uint32 {
	for l := hk.kept[k]; l > hk.kept[k-1]; l-- {
		v = hk.h.ParentID(l, v)
	}
	return v
}

// declareConfigHierarchies declares Config.Hierarchies on the relation so
// they persist in snapshots and grow with appended rows like
// catalog-declared ones. Entries whose level list matches an
// already-declared hierarchy are accepted as-is.
func (u *Universe) declareConfigHierarchies(hiers [][]string) error {
	for _, levels := range hiers {
		if len(levels) == 0 {
			return fmt.Errorf("explain: empty hierarchy in Config.Hierarchies")
		}
		already := false
		for _, h := range u.rel.Hierarchies() {
			if hierarchyMatches(u.rel, h, levels) {
				already = true
				break
			}
		}
		if already {
			continue
		}
		if err := u.rel.DeclareHierarchy(strings.Join(levels, ">"), levels); err != nil {
			return err
		}
	}
	return nil
}

// hierarchyMatches reports whether h's level dimensions are exactly the
// named levels, in order.
func hierarchyMatches(r *relation.Relation, h *relation.Hierarchy, levels []string) bool {
	if h.NumLevels() != len(levels) {
		return false
	}
	for l, name := range levels {
		if r.Dim(h.LevelDim(l)).Name() != name {
			return false
		}
	}
	return true
}

// resolveHierarchies projects the relation's declared hierarchies onto the
// explain-by set, filling hier/hierOf/hierLevel. Hierarchies with fewer
// than two kept levels are ignored — one level behaves exactly like a flat
// attribute. Requires initDimPos.
func (u *Universe) resolveHierarchies() {
	u.hierOf = make([]int32, len(u.explainBy))
	u.hierLevel = make([]int32, len(u.explainBy))
	for i := range u.hierOf {
		u.hierOf[i] = -1
		u.hierLevel[i] = -1
	}
	u.hier = nil
	for _, h := range u.rel.Hierarchies() {
		var hk hierKept
		hk.h = h
		for l := 0; l < h.NumLevels(); l++ {
			d := h.LevelDim(l)
			if p := u.dimPos[d]; p >= 0 {
				hk.kept = append(hk.kept, l)
				hk.dims = append(hk.dims, d)
				hk.pos = append(hk.pos, p)
			}
		}
		if len(hk.kept) < 2 {
			continue
		}
		hi := int32(len(u.hier))
		u.hier = append(u.hier, hk)
		for k, p := range hk.pos {
			u.hierOf[p] = hi
			u.hierLevel[p] = int32(k)
		}
	}
}

// HasTaxonomy reports whether at least one hierarchy has ≥ 2 kept levels,
// i.e. whether the candidate space is in grouped roll-up form.
func (u *Universe) HasTaxonomy() bool { return len(u.hier) > 0 }

// filterHierSubsets drops explain-by subsets holding more than one level
// of the same hierarchy. With no hierarchies it returns the input
// unchanged, keeping flat enumeration bit-identical.
func (u *Universe) filterHierSubsets(list [][]int) [][]int {
	out := list[:0]
	for _, subset := range list {
		if u.subsetGrouped(subset) {
			out = append(out, subset)
		}
	}
	return out
}

// subsetGrouped reports whether the subset holds at most one level of
// each hierarchy.
func (u *Universe) subsetGrouped(subset []int) bool {
	for i, d := range subset {
		hi := u.hierOf[u.dimPos[d]]
		if hi < 0 {
			continue
		}
		for _, d2 := range subset[i+1:] {
			if u.hierOf[u.dimPos[d2]] == hi {
				return false
			}
		}
	}
	return true
}

// addTaxEdges registers candidate c as a drill-down child of each of its
// taxonomy roll-ups: for every hierarchy predicate at kept level k ≥ 1,
// the conjunction with that predicate replaced by its level-(k−1) parent
// value. The roll-up's slice contains c's rows, so it always occurs and
// is always enumerated (replacing one hierarchy level by another keeps
// the subset grouped). Edges land in the same child lists the DP walks
// for attribute extensions, keyed by the child's own dimension — a node
// holding the level-(k−1) predicate has no extension children under the
// level-k dimension (that subset is not grouped), so each list stays
// single-mechanism and the lists still partition the parent's slice.
func (u *Universe) addTaxEdges(c *Candidate) {
	for _, p := range c.Conj {
		pos := u.dimPos[p.Dim]
		hi := u.hierOf[pos]
		if hi < 0 {
			continue
		}
		k := int(u.hierLevel[pos])
		if k == 0 {
			continue
		}
		hk := &u.hier[hi]
		parent := rollUpPred(c.Conj, p.Dim, hk.dims[k-1], hk.parentVal(k, p.Value))
		pid, ok := u.index.lookup(parent)
		if !ok {
			// Unreachable: the roll-up covers c's rows; guard anyway.
			continue
		}
		parentKey := parent.Key()
		byDim, ok := u.children[parentKey]
		if !ok {
			byDim = make(map[int][]int)
			u.children[parentKey] = byDim
		}
		byDim[p.Dim] = append(byDim[p.Dim], c.ID)
		u.addChildFlat(pid+1, p.Dim, uint32(c.ID))
	}
}

// rollUpPred returns c with its predicate over fromDim replaced by
// (toDim = toVal), re-sorted into canonical dimension order.
func rollUpPred(c relation.Conjunction, fromDim, toDim int, toVal uint32) relation.Conjunction {
	out := make(relation.Conjunction, len(c))
	for i, p := range c {
		if p.Dim == fromDim {
			p = relation.Pred{Dim: toDim, Value: toVal}
		}
		out[i] = p
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dim < out[j].Dim })
	return out
}

// appendGeneralizations is appendAncestors' taxonomy-aware form: the
// closure row holds every conjunction obtained by independently dropping,
// keeping, or rolling each predicate up through its coarser kept levels —
// exactly the transitive ancestors under extension plus taxonomy edges.
// Distinct option choices yield distinct conjunctions (every option has a
// distinct dimension), so no deduplication is needed.
func (u *Universe) appendGeneralizations(conj relation.Conjunction) {
	opts := make([][]relation.Pred, len(conj))
	for i, p := range conj {
		variants := []relation.Pred{p}
		pos := u.dimPos[p.Dim]
		if hi := u.hierOf[pos]; hi >= 0 {
			hk := &u.hier[hi]
			v := p.Value
			for k := int(u.hierLevel[pos]); k > 0; k-- {
				v = hk.parentVal(k, v)
				variants = append(variants, relation.Pred{Dim: hk.dims[k-1], Value: v})
			}
		}
		opts[i] = variants
	}
	cur := make(relation.Conjunction, 0, len(conj))
	var rec func(i int)
	rec = func(i int) {
		if i == len(conj) {
			if len(cur) == 0 {
				return
			}
			sub := append(relation.Conjunction(nil), cur...)
			sort.Slice(sub, func(a, b int) bool { return sub[a].Dim < sub[b].Dim })
			if aid, ok := u.index.lookup(sub); ok {
				u.ancIDs = append(u.ancIDs, uint32(aid))
			}
			return
		}
		rec(i + 1) // drop the predicate
		for _, v := range opts[i] {
			cur = append(cur, v)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	u.ancOff = append(u.ancOff, uint32(len(u.ancIDs)))
}

// LevelPath returns candidate id's taxonomy path: the root-to-self value
// chain of its deepest hierarchy predicate ("TX", "Houston"), or nil when
// the candidate has no predicate over a kept hierarchy.
func (u *Universe) LevelPath(id int) []string {
	conj := u.cands[id].Conj
	bestK := int32(-1)
	var bestV uint32
	var bestH *hierKept
	for _, p := range conj {
		pos := u.dimPos[p.Dim]
		if pos < 0 {
			continue
		}
		if hi := u.hierOf[pos]; hi >= 0 && u.hierLevel[pos] > bestK {
			bestK = u.hierLevel[pos]
			bestV = p.Value
			bestH = &u.hier[hi]
		}
	}
	if bestK < 0 {
		return nil
	}
	path := make([]string, bestK+1)
	v := bestV
	for k := int(bestK); ; k-- {
		path[k] = u.rel.Dim(bestH.dims[k]).Value(v)
		if k == 0 {
			break
		}
		v = bestH.parentVal(k, v)
	}
	return path
}
