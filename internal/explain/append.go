package explain

import (
	"fmt"

	"repro/internal/relation"
)

// This file implements the universe's append path — the heart of the
// real-time extension's O(delta) ingestion. A universe built with
// Config.Streaming retains its group-by plans and lays every candidate's
// series out in a candidate-major arena with tail headroom; Append then
// consumes only the rows added to the relation since the last call:
//
//   - each plan discovers the delta's groups and extends its slot map
//     (pass 1 over the delta only);
//   - groups first occurring in the delta become candidates registered at
//     the tail of the candidate list, so every existing candidate ID —
//     and with it every cached per-segment result — stays valid with no
//     remapping;
//   - the delta's contributions are accumulated into the arena in row
//     order, which keeps every series bit-identical to a from-scratch
//     build over the full relation;
//   - when the universe is smoothed, only the tail window the new points
//     perturb is re-smoothed, from incrementally maintained prefix sums.

// AppendInfo reports what one Universe.Append consumed and touched.
type AppendInfo struct {
	// OldTimestamps and NewTimestamps are the series lengths before and
	// after the append.
	OldTimestamps, NewTimestamps int
	// OldCandidates and NewCandidates count the candidates before the
	// append and the ones the delta introduced at the tail.
	OldCandidates, NewCandidates int
	// Rows is the number of relation rows consumed.
	Rows int
	// ChangedFrom is the first series position whose (possibly smoothed)
	// values may differ from before the append; cached per-segment state
	// for segments entirely before it stays valid.
	ChangedFrom int
}

// Append consumes the relation rows added since the universe was built
// (or since the previous Append) and extends the universe in place:
// series grow inside the shared arena, and candidates first occurring in
// the delta are registered after all existing ones. The cost is
// O(delta rows + candidates), not O(history). It returns an error when
// the universe was not built with Config.Streaming or when appended rows
// reach back before the previously last timestamp.
func (u *Universe) Append() (AppendInfo, error) {
	st := u.stream
	if st == nil {
		return AppendInfo{}, fmt.Errorf("explain: universe was not built for streaming (Config.Streaming)")
	}
	r := u.rel
	oldT := len(u.total)
	newT := r.NumTimestamps()
	fromRow := st.ingested
	nRows := r.NumRows()
	info := AppendInfo{
		OldTimestamps: oldT,
		NewTimestamps: newT,
		OldCandidates: len(u.cands),
		Rows:          nRows - fromRow,
		ChangedFrom:   newT,
	}
	if fromRow == nRows {
		return info, nil
	}

	// The earliest position the delta touches. Relation.AppendRows only
	// admits rows at or after the previously last timestamp; re-check so
	// a relation mutated some other way fails loudly instead of silently
	// corrupting cached state.
	p0 := newT
	for row := fromRow; row < nRows; row++ {
		if t := r.TimeIndex(row); t < p0 {
			p0 = t
		}
	}
	if p0 < oldT-1 {
		return info, fmt.Errorf("explain: appended rows reach back to position %d; only the last position %d may be revised", p0, oldT-1)
	}

	if newT > u.arenaCap {
		u.growArenaCap(oldT, newT+newT/2)
	}

	// Pass 1: every plan discovers the delta's groups. Plans are
	// independent, so this fans across the worker pool.
	runIndexed(len(st.plans), st.workers, func(i int) {
		st.plans[i].AppendRows(fromRow)
	})

	// Register candidates first occurring in the delta at the tail,
	// subset-major and rank-ascending within each subset — the same
	// deterministic order construction uses, with IDs continuing after
	// every existing candidate.
	for si, p := range st.plans {
		subset := st.subsets[si]
		for g, ng := len(st.candOf[si]), p.NumGroups(); g < ng; g++ {
			ids := p.GroupIDsAt(g)
			conj := make(relation.Conjunction, len(subset))
			for i := range subset {
				conj[i] = relation.Pred{Dim: subset[i], Value: ids[i]}
			}
			id := len(u.cands)
			u.ensureSlot(id)
			u.cands = append(u.cands, &Candidate{ID: id, Conj: conj})
			u.index.insert(conj, id)
			st.candOf[si] = append(st.candOf[si], id)
		}
	}
	info.NewCandidates = len(u.cands) - info.OldCandidates

	// Adjacency and ancestor closure for the new candidates. All their
	// prefixes exist by now (any prefix of an occurring conjunction
	// occurs in the same rows), and appending in ascending ID order keeps
	// every child list sorted without re-sorting.
	if info.NewCandidates > 0 {
		u.childrenFlat = append(u.childrenFlat, make([][][]uint32, info.NewCandidates)...)
		for id := info.OldCandidates; id < len(u.cands); id++ {
			c := u.cands[id]
			for _, p := range c.Conj {
				parent := c.Conj.Without(p.Dim)
				parentKey := parent.Key()
				byDim, ok := u.children[parentKey]
				if !ok {
					byDim = make(map[int][]int)
					u.children[parentKey] = byDim
				}
				byDim[p.Dim] = append(byDim[p.Dim], id)

				parentID := 0 // root
				if len(parent) > 0 {
					pid, ok := u.index.lookup(parent)
					if !ok {
						// Unreachable by prefix closure; guard anyway.
						continue
					}
					parentID = pid + 1
				}
				u.addChildFlat(parentID, p.Dim, uint32(id))
			}
			// Taxonomy roll-up edges: the roll-up occurs in the same rows,
			// so it is either pre-existing or registered in this batch, and
			// ascending-ID appends keep its child lists sorted too.
			if len(u.hier) > 0 {
				u.addTaxEdges(c)
			}
			// New candidates register at the tail, so extending the CSR
			// ancestor closure in id order keeps the layout valid.
			u.appendAncestors(c.Conj)
		}
	}

	// Pass 2: accumulate only the delta into the arena. Plans own
	// disjoint candidate ID sets, hence disjoint arena ranges, so the
	// fill fans out safely.
	capA := u.arenaCap
	runIndexed(len(st.plans), st.workers, func(si int) {
		candOf := st.candOf[si]
		st.plans[si].FillRows(fromRow, func(rank int) []relation.SumCount {
			id := candOf[rank]
			return u.raw[id*capA : id*capA+newT]
		})
	})

	// Extend the raw overall series in row order (identical accumulation
	// order to a from-scratch AggregateSeries over the full relation).
	if cap(u.rawTotal) < newT {
		grown := make([]relation.SumCount, newT, capA)
		copy(grown, u.rawTotal)
		u.rawTotal = grown
	} else {
		u.rawTotal = u.rawTotal[:newT]
	}
	for row := fromRow; row < nRows; row++ {
		sc := &u.rawTotal[r.TimeIndex(row)]
		sc.Sum += r.MeasureValue(u.measure, row)
		sc.Count++
	}

	changed := p0
	if u.smooth != nil {
		changed = u.resmoothTail(p0, newT, info.OldCandidates)
	}
	info.ChangedFrom = changed

	// Re-point every candidate's series and the active total at the new
	// length.
	active := u.raw
	if u.smooth != nil {
		active = u.smooth.arena
		u.total = u.smooth.total
	} else {
		u.total = u.rawTotal
	}
	for id, c := range u.cands {
		c.Series = active[id*capA : id*capA+newT : (id+1)*capA]
	}
	st.ingested = nRows
	return info, nil
}

// resmoothTail extends the smoothing prefix sums past the first touched
// position p0 and recomputes the smoothed values a centered window at p0
// can see, returning the first recomputed position. Positions before it
// kept both their raw inputs and their (unclamped-at-the-tail) windows,
// so their smoothed values are untouched — and everything recomputed uses
// the same prefix-difference arithmetic as a from-scratch smooth.
func (u *Universe) resmoothTail(p0, newT, oldCands int) int {
	sm := u.smooth
	capA := u.arenaCap
	half := sm.window / 2
	lo0 := p0 - half
	if lo0 < 0 {
		lo0 = 0
	}

	if cap(sm.totPrefix) < newT+1 {
		grown := make([]relation.SumCount, len(sm.totPrefix), capA+1)
		copy(grown, sm.totPrefix)
		sm.totPrefix = grown
	}
	sm.totPrefix = sm.totPrefix[:newT+1]
	fillPrefix(sm.totPrefix, u.rawTotal, p0)
	if cap(sm.total) < newT {
		grown := make([]relation.SumCount, len(sm.total), capA)
		copy(grown, sm.total)
		sm.total = grown
	}
	sm.total = sm.total[:newT]
	smoothRange(sm.total, sm.totPrefix, newT, sm.window, lo0)

	runIndexed(len(u.cands), u.stream.workers, func(id int) {
		raw := u.raw[id*capA : id*capA+newT]
		pref := sm.prefix[id*(capA+1) : id*(capA+1)+newT+1]
		from := p0
		if id >= oldCands {
			// New candidates have no prefix history; build it from zero.
			from = 0
		}
		fillPrefix(pref, raw, from)
		smoothRange(sm.arena[id*capA:id*capA+newT], pref, newT, sm.window, lo0)
	})
	return lo0
}

// growArenaCap reallocates the arenas with a larger per-candidate stride,
// copying each candidate's live prefix ([0, liveT)). Geometric headroom
// makes this amortized O(1) per appended timestamp.
func (u *Universe) growArenaCap(liveT, newCap int) {
	oldCap := u.arenaCap
	slots := len(u.raw) / oldCap
	newRaw := make([]relation.SumCount, slots*newCap)
	for s := 0; s < slots; s++ {
		copy(newRaw[s*newCap:], u.raw[s*oldCap:s*oldCap+liveT])
	}
	u.raw = newRaw
	if sm := u.smooth; sm != nil {
		newArena := make([]relation.SumCount, slots*newCap)
		newPrefix := make([]relation.SumCount, slots*(newCap+1))
		for s := 0; s < slots; s++ {
			copy(newArena[s*newCap:], sm.arena[s*oldCap:s*oldCap+liveT])
			copy(newPrefix[s*(newCap+1):], sm.prefix[s*(oldCap+1):s*(oldCap+1)+liveT+1])
		}
		sm.arena = newArena
		sm.prefix = newPrefix
	}
	u.arenaCap = newCap
}

// ensureSlot grows the arenas' candidate capacity so candidate id has a
// zeroed series slot, again with geometric headroom.
func (u *Universe) ensureSlot(id int) {
	capA := u.arenaCap
	if (id+1)*capA <= len(u.raw) {
		return
	}
	slots := id + 1 + (id+1)/4 + 16
	newRaw := make([]relation.SumCount, slots*capA)
	copy(newRaw, u.raw)
	u.raw = newRaw
	if sm := u.smooth; sm != nil {
		newArena := make([]relation.SumCount, slots*capA)
		copy(newArena, sm.arena)
		sm.arena = newArena
		newPrefix := make([]relation.SumCount, slots*(capA+1))
		copy(newPrefix, sm.prefix)
		sm.prefix = newPrefix
	}
}
