package explain

import (
	"runtime"
	"testing"

	"repro/internal/relation"
	"repro/internal/synth"
)

// heapAlloc settles the heap and reads HeapAlloc. Two GC cycles run the
// finalizer queue to completion, so freed test fixtures don't pollute
// the delta.
func heapAlloc() int64 {
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// TestApproxBytesTracksMeasuredHeapGrowth checks the eviction cost model
// against reality on a hierarchical dataset with a derived range-bin
// column — exactly the shape whose level columns, taxonomy adjacency,
// and derived columns the old estimate silently omitted. The estimate
// must land within a band of the measured heap growth of building the
// universe: tight enough to catch a term dropping out again, loose
// enough to absorb allocator slack and map overhead.
func TestApproxBytesTracksMeasuredHeapGrowth(t *testing.T) {
	ds, err := synth.Taxonomy(synth.TaxonomyParams{
		Cats: 12, SubcatsPerCat: 10, LeavesPerSubcat: 10, N: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := ds.Rel
	if err := rel.AddRangeBin("price_bin", "price", 16); err != nil {
		t.Fatal(err)
	}

	before := heapAlloc()
	u, err := NewUniverse(rel, Config{
		Measure: "sales", Agg: relation.Sum,
		ExplainBy:   []string{"cat", "subcat", "leaf", "price_bin"},
		MaxOrder:    1,
		Hierarchies: [][]string{synth.TaxonomyLevels()},
	})
	if err != nil {
		t.Fatal(err)
	}
	measured := heapAlloc() - before
	runtime.KeepAlive(u)

	est := u.ApproxBytes()
	// DerivedBytes counts relation-side state built before the
	// measurement window (the range-bin column); subtract it so the band
	// compares like with like.
	est -= rel.DerivedBytes()
	t.Logf("measured universe heap growth %d bytes, estimate %d (%.2fx)",
		measured, est, float64(est)/float64(measured))
	if measured <= 0 {
		t.Skip("heap measurement swamped by concurrent allocation")
	}
	if est < measured/4 {
		t.Fatalf("ApproxBytes = %d severely underestimates measured growth %d (<25%%): a cost term is missing", est, measured)
	}
	if est > 4*measured {
		t.Fatalf("ApproxBytes = %d severely overestimates measured growth %d (>400%%)", est, measured)
	}
	runtime.KeepAlive(rel)
}
