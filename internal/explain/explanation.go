// Package explain implements candidate explanations and difference
// metrics for TSExplain.
//
// An explanation E (Definition 3.1) is a conjunction of equality
// predicates over the user-selected explain-by attributes. This package
// enumerates every candidate explanation that occurs in the relation up to
// an order threshold β̄, precomputes each candidate's decomposed aggregate
// time series (the "data cube" access of Section 5.2 module a), and scores
// candidates over arbitrary segments with the difference-metric library:
// absolute-change (Definition 3.2, the paper's default), relative-change,
// and risk-ratio.
package explain

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Candidate is one enumerated explanation together with its precomputed
// per-timestamp aggregate state.
type Candidate struct {
	// ID is the candidate's dense index within its Universe.
	ID int
	// Conj is the predicate conjunction selecting the candidate's data
	// slice.
	Conj relation.Conjunction
	// Series is the decomposed aggregate of σ_E R per timestamp.
	Series []relation.SumCount
}

// Universe holds every candidate explanation for one (relation, measure,
// aggregate, explain-by attributes) quadruple, plus the overall aggregated
// series. It is the output of the Preprocessing module and the input to
// the Cascading Analysts and K-Segmentation modules.
type Universe struct {
	rel       *relation.Relation
	agg       relation.AggFunc
	measure   int
	explainBy []int // dimension indexes, sorted
	maxOrder  int

	total []relation.SumCount
	cands []*Candidate
	index *candIndex

	// children indexes candidate extensions for the drill-down tree:
	// children[parentKey][dim] lists candidate IDs whose conjunction is the
	// parent conjunction extended by one predicate over dim.
	children map[string]map[int][]int
	// childrenFlat is the same adjacency in the form the Cascading
	// Analysts hot path walks: childrenFlat[parentID+1] (index 0 is the
	// root) is nil for leaves, otherwise a slice indexed by explain-by
	// dimension *position* holding that dimension's sorted child IDs as
	// compact uint32 — no map, no string keys, half the id width.
	childrenFlat [][][]uint32
	// dimPos maps a relation dimension index to its position in explainBy
	// (−1 when the dimension is not explained), the indirection that lets
	// childrenFlat drop its per-node map.
	dimPos []int32
	// The ancestor closure (every non-empty sub-conjunction of a
	// candidate, itself included) in CSR form: candidate id's ancestors
	// are ancIDs[ancOff[id]:ancOff[id+1]]. Streaming appends only ever add
	// candidates at the tail, so the CSR layout extends in place.
	ancOff []uint32
	ancIDs []uint32

	// hier holds the relation hierarchies with ≥ 2 levels kept in
	// explainBy; hierOf/hierLevel map each explain-by position to its
	// hierarchy index and kept level (−1 when flat). Non-empty hier puts
	// enumeration in grouped roll-up form (see hierarchy.go).
	hier      []hierKept
	hierOf    []int32
	hierLevel []int32

	// raw is the candidate-major series arena: candidate id's decomposed
	// raw (pre-smoothing) series occupies raw[id*arenaCap : id*arenaCap+T].
	// The stride leaves tail headroom under Config.Streaming so appends
	// extend series in place instead of reallocating per update.
	raw      []relation.SumCount
	arenaCap int
	// arenaMapped is set when raw aliases a read-only snapshot mapping
	// instead of a heap allocation (DecodeUniverseSnapshotAlias): the
	// arena bytes are then kernel-evictable, excluded from ApproxBytes
	// and reported through MappedBytes instead, and must never be
	// written — mapped universes are one-shot (stream == nil), so the
	// append path can't reach them, and Smooth writes its own arena.
	arenaMapped bool
	// backing pins whatever owns the mapped arena's bytes (an
	// mmapfile.File) for as long as the universe — and any Candidate
	// Series aliasing the arena — is reachable.
	backing interface{ Close() error }
	// rawTotal is the raw overall aggregate series; total aliases it until
	// Smooth replaces the active view with the smoothed one.
	rawTotal []relation.SumCount

	smooth *smoothState // non-nil once Smooth ran on an arena-backed universe
	stream *streamState // non-nil when built with Config.Streaming
}

// streamState is the retained pass-1 state that lets Append consume only
// newly arrived rows: one group-by plan per explain-by subset, plus the
// mapping from each plan's group ranks to universe candidate IDs.
type streamState struct {
	subsets  [][]int
	plans    []*relation.GroupByPlan
	candOf   [][]int // per subset: group rank -> candidate ID
	ingested int     // relation rows already consumed
	workers  int
}

// Config controls candidate enumeration.
type Config struct {
	// Measure is the name of the measure attribute M.
	Measure string
	// Agg is the aggregate function f.
	Agg relation.AggFunc
	// ExplainBy lists the explain-by attribute names A. Empty means all
	// dimension attributes, following the paper's default.
	ExplainBy []string
	// MaxOrder is the order threshold β̄ (default 3).
	MaxOrder int
	// Hierarchies lists taxonomies to declare on the relation before
	// enumeration, each an ordered coarse→fine list of dimension names.
	// Hierarchies already declared on the relation (by the catalog, a
	// restored snapshot, or a previous engine) are picked up automatically
	// and entries matching one of them are accepted as-is. When at least
	// two levels of a hierarchy appear in ExplainBy, enumeration switches
	// to grouped roll-up form: mixed-level conjunctions are excluded, and
	// candidates gain taxonomy drill-down edges to their roll-ups.
	Hierarchies [][]string
	// Parallelism fans the per-subset group-bys of candidate enumeration
	// across this many goroutines. 0 or 1 builds the universe serially;
	// the resulting candidate IDs, series, and adjacency are identical
	// either way.
	Parallelism int
	// Streaming retains the group-by plans and allocates the series arena
	// with tail headroom so Append can extend the universe from newly
	// arrived rows in O(delta). One-shot universes leave it false and pay
	// neither the headroom nor the retained plan state.
	Streaming bool
	// Cancel, when non-nil, is polled between units of enumeration work; a
	// non-nil return aborts construction with that error. The serving
	// layer passes ctx.Err here so a request deadline stops a half-built
	// universe instead of letting it run to completion.
	Cancel func() error
}

// candIndex resolves a conjunction to its candidate ID. When the relation
// fits (≤ 16 dims, dictionaries ≤ 65536, β̄ ≤ 3 — every configuration the
// engine meets in practice) it is keyed by packed uint64 conjunctions and
// the hot paths never build a string; otherwise it transparently falls
// back to the legacy Conjunction.Key() strings.
type candIndex struct {
	// Candidate ids are stored as uint32 — candidate counts are bounded
	// far below 2^32, and the narrower value type shrinks the map's bucket
	// footprint on the enumerate/lookup hot path.
	packed map[relation.PackedConj]uint32
	str    map[string]uint32
}

func newCandIndex(r *relation.Relation, maxOrder int) *candIndex {
	if relation.CanPackConjs(r, maxOrder) {
		return &candIndex{packed: make(map[relation.PackedConj]uint32)}
	}
	return &candIndex{str: make(map[string]uint32)}
}

func (ix *candIndex) insert(c relation.Conjunction, id int) {
	if ix.packed != nil {
		if k, ok := relation.PackConj(c); ok {
			ix.packed[k] = uint32(id)
			return
		}
		// Unreachable when newCandIndex vetted the relation; guard anyway.
		ix.str = make(map[string]uint32)
		//tsexplain:unordered map-to-map migration keyed by distinct conjunction keys
		for k, v := range ix.packed {
			ix.str[k.Unpack().Key()] = v
		}
		ix.packed = nil
	}
	ix.str[c.Key()] = uint32(id)
}

func (ix *candIndex) lookup(c relation.Conjunction) (int, bool) {
	if ix.packed != nil {
		if k, ok := relation.PackConj(c); ok {
			id, ok := ix.packed[k]
			return int(id), ok
		}
		return 0, false
	}
	id, ok := ix.str[c.Key()]
	return int(id), ok
}

// NewUniverse enumerates all candidate explanations of order ≤ β̄ that
// occur in r and precomputes their aggregate series.
func NewUniverse(r *relation.Relation, cfg Config) (*Universe, error) {
	m := r.MeasureIndex(cfg.Measure)
	if m < 0 {
		return nil, fmt.Errorf("explain: unknown measure %q", cfg.Measure)
	}
	maxOrder := cfg.MaxOrder
	if maxOrder <= 0 {
		maxOrder = 3
	}
	var dims []int
	if len(cfg.ExplainBy) == 0 {
		for i := 0; i < r.NumDims(); i++ {
			dims = append(dims, i)
		}
	} else {
		for _, name := range cfg.ExplainBy {
			d := r.DimIndex(name)
			if d < 0 {
				return nil, fmt.Errorf("explain: unknown explain-by attribute %q", name)
			}
			dims = append(dims, d)
		}
		sort.Ints(dims)
		for i := 1; i < len(dims); i++ {
			if dims[i] == dims[i-1] {
				return nil, fmt.Errorf("explain: duplicate explain-by attribute %q", r.Dim(dims[i]).Name())
			}
		}
	}
	if maxOrder > len(dims) {
		maxOrder = len(dims)
	}

	u := &Universe{
		rel:       r,
		agg:       cfg.Agg,
		measure:   m,
		explainBy: dims,
		maxOrder:  maxOrder,
		rawTotal:  r.AggregateSeries(m),
		index:     newCandIndex(r, maxOrder),
		children:  make(map[string]map[int][]int),
	}
	u.total = u.rawTotal

	// Enumerate every attribute subset of size 1..β̄ and group-by each
	// with the columnar kernel: plan all subsets (pass 1), allocate ONE
	// candidate-major arena backing every candidate's series, then fill
	// the disjoint arena ranges (pass 2). Both passes fan across the
	// worker pool; the kernel orders each subset's groups by id tuple, so
	// candidate IDs are deterministic and identical at any parallelism.
	workers := cfg.Parallelism
	cancel := cfg.Cancel
	if cancel == nil {
		cancel = func() error { return nil }
	}
	if err := u.declareConfigHierarchies(cfg.Hierarchies); err != nil {
		return nil, err
	}
	u.initDimPos()
	u.resolveHierarchies()
	subsetList := subsets(dims, maxOrder)
	if len(u.hier) > 0 {
		subsetList = u.filterHierSubsets(subsetList)
	}
	plans := make([]*relation.GroupByPlan, len(subsetList))
	runIndexed(len(subsetList), workers, func(i int) {
		if cancel() != nil {
			return
		}
		plans[i] = r.PlanGroupBy(subsetList[i], m)
	})
	if err := cancel(); err != nil {
		return nil, err
	}
	T := r.NumTimestamps()
	offsets := make([]int, len(plans)+1)
	for i, p := range plans {
		offsets[i+1] = offsets[i] + p.NumGroups()
	}
	totalGroups := offsets[len(plans)]
	// Streaming universes get segcache-style headroom in both dimensions
	// (timestamps per series, candidate slots) so the common append —
	// later days, maybe a few new candidates — never reallocates.
	u.arenaCap = T
	slotCap := totalGroups
	if cfg.Streaming {
		u.arenaCap = T + T/2 + 8
		slotCap = totalGroups + totalGroups/4 + 16
		grown := make([]relation.SumCount, T, u.arenaCap)
		copy(grown, u.rawTotal)
		u.rawTotal = grown
		u.total = u.rawTotal
	}
	u.raw = make([]relation.SumCount, slotCap*u.arenaCap)
	runIndexed(len(plans), workers, func(i int) {
		if plans[i].NumGroups() == 0 || cancel() != nil {
			return
		}
		plans[i].FillArena(u.raw[offsets[i]*u.arenaCap:(offsets[i]+plans[i].NumGroups())*u.arenaCap], u.arenaCap)
	})
	if err := cancel(); err != nil {
		return nil, err
	}
	u.cands = make([]*Candidate, 0, totalGroups)
	for si, p := range plans {
		subset := subsetList[si]
		for g, ng := 0, p.NumGroups(); g < ng; g++ {
			ids := p.GroupIDsAt(g)
			conj := make(relation.Conjunction, len(subset))
			for i := range subset {
				conj[i] = relation.Pred{Dim: subset[i], Value: ids[i]}
			}
			id := len(u.cands)
			c := &Candidate{ID: id, Conj: conj, Series: u.raw[id*u.arenaCap : id*u.arenaCap+T : (id+1)*u.arenaCap]}
			u.cands = append(u.cands, c)
			u.index.insert(conj, id)
		}
	}
	if cfg.Streaming {
		candOf := make([][]int, len(plans))
		for si := range plans {
			ids := make([]int, plans[si].NumGroups())
			for g := range ids {
				ids[g] = offsets[si] + g
			}
			candOf[si] = ids
		}
		u.stream = &streamState{
			subsets:  subsetList,
			plans:    plans,
			candOf:   candOf,
			ingested: r.NumRows(),
			workers:  workers,
		}
	}

	u.buildDerivedIndexes()
	return u, nil
}

// buildDerivedIndexes computes the state derived purely from the
// candidate list and index: the drill-down adjacency and the ancestor
// closure. It is shared by NewUniverse and the snapshot decoder — a
// restored universe rebuilds this cheap derived state in memory instead
// of persisting it.
func (u *Universe) buildDerivedIndexes() {
	u.initDimPos()
	if u.hierOf == nil {
		// Snapshot-decoded universes resolve their (relation-declared,
		// hence persisted) hierarchies here; NewUniverse resolved before
		// enumeration.
		u.resolveHierarchies()
	}
	// Build the drill-down adjacency: each candidate of order β is a child
	// of each of its β order-(β−1) prefixes, under the removed dimension.
	u.childrenFlat = make([][][]uint32, len(u.cands)+1)
	for _, c := range u.cands {
		for _, p := range c.Conj {
			parent := c.Conj.Without(p.Dim)
			parentKey := parent.Key()
			byDim, ok := u.children[parentKey]
			if !ok {
				byDim = make(map[int][]int)
				u.children[parentKey] = byDim
			}
			byDim[p.Dim] = append(byDim[p.Dim], c.ID)

			parentID := 0 // root
			if len(parent) > 0 {
				id, ok := u.index.lookup(parent)
				if !ok {
					// Every prefix of an occurring conjunction occurs, so
					// this is unreachable; guard anyway.
					continue
				}
				parentID = id + 1
			}
			u.addChildFlat(parentID, p.Dim, uint32(c.ID))
		}
	}
	if len(u.hier) > 0 {
		for _, c := range u.cands {
			u.addTaxEdges(c)
		}
	}
	// Sort child lists once so the DP and its extraction never re-sort.
	for _, byPos := range u.childrenFlat {
		for _, kids := range byPos {
			sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		}
	}

	// Precompute each candidate's ancestor closure (every non-empty
	// sub-conjunction, itself included). The Cascading Analysts DP uses
	// it to prune drill-down to subtrees that can still reach a
	// selectable candidate.
	u.ancOff = make([]uint32, 1, len(u.cands)+1)
	u.ancIDs = u.ancIDs[:0]
	for _, c := range u.cands {
		u.appendAncestors(c.Conj)
	}
}

// initDimPos (re)builds the dimension-index → explain-by-position map.
func (u *Universe) initDimPos() {
	u.dimPos = make([]int32, u.rel.NumDims())
	for i := range u.dimPos {
		u.dimPos[i] = -1
	}
	for pos, d := range u.explainBy {
		u.dimPos[d] = int32(pos)
	}
}

// addChildFlat records child id under (parentID, dim) in the flat
// adjacency, allocating the parent's per-dimension slot vector lazily.
func (u *Universe) addChildFlat(parentID, dim int, id uint32) {
	byPos := u.childrenFlat[parentID]
	if byPos == nil {
		byPos = make([][]uint32, len(u.explainBy))
		u.childrenFlat[parentID] = byPos
	}
	pos := u.dimPos[dim]
	byPos[pos] = append(byPos[pos], id)
}

// appendAncestors resolves conj's non-empty generalizations and appends
// the closure as the next CSR row of (ancOff, ancIDs): without
// hierarchies these are exactly the sub-conjunctions; in grouped roll-up
// form each hierarchy predicate may additionally coarsen to any kept
// level above it (see appendGeneralizations).
func (u *Universe) appendAncestors(conj relation.Conjunction) {
	if len(u.hier) > 0 {
		u.appendGeneralizations(conj)
		return
	}
	for _, sub := range conjSubsets(conj) {
		if aid, ok := u.index.lookup(sub); ok {
			u.ancIDs = append(u.ancIDs, uint32(aid))
		}
	}
	u.ancOff = append(u.ancOff, uint32(len(u.ancIDs)))
}

// conjSubsets enumerates every non-empty sub-conjunction of c (c itself
// included). A conjunction of order β has 2^β − 1 of them.
func conjSubsets(c relation.Conjunction) []relation.Conjunction {
	var out []relation.Conjunction
	n := len(c)
	for mask := 1; mask < 1<<n; mask++ {
		sub := make(relation.Conjunction, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, c[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

// AncestorsOf returns the candidate IDs of every non-empty
// sub-conjunction of candidate id, id itself included.
func (u *Universe) AncestorsOf(id int) []uint32 {
	return u.ancIDs[u.ancOff[id]:u.ancOff[id+1]]
}

// ChildrenOf returns the candidate IDs extending node nodeID (-1 for the
// root) by one predicate over dimension dim, sorted ascending.
func (u *Universe) ChildrenOf(nodeID, dim int) []uint32 {
	byPos := u.childrenFlat[nodeID+1]
	if byPos == nil || dim >= len(u.dimPos) {
		return nil
	}
	pos := u.dimPos[dim]
	if pos < 0 {
		return nil
	}
	return byPos[pos]
}

// subsets returns all non-empty subsets of dims with size ≤ maxSize, each
// sorted ascending.
func subsets(dims []int, maxSize int) [][]int {
	var out [][]int
	n := len(dims)
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, dims[i]))
		}
	}
	rec(0, nil)
	return out
}

// Relation returns the underlying relation.
func (u *Universe) Relation() *relation.Relation { return u.rel }

// Agg returns the aggregate function being explained.
func (u *Universe) Agg() relation.AggFunc { return u.agg }

// MeasureIndex returns the measure attribute index being aggregated.
func (u *Universe) MeasureIndex() int { return u.measure }

// ExplainBy returns the explain-by dimension indexes (sorted).
func (u *Universe) ExplainBy() []int {
	return append([]int(nil), u.explainBy...)
}

// MaxOrder returns the enumeration order threshold β̄.
func (u *Universe) MaxOrder() int { return u.maxOrder }

// NumCandidates returns ε, the number of candidate explanations.
func (u *Universe) NumCandidates() int { return len(u.cands) }

// Candidate returns the candidate with the given dense ID.
func (u *Universe) Candidate(id int) *Candidate { return u.cands[id] }

// Lookup resolves a conjunction to its candidate ID; ok is false when the
// conjunction never occurs in the data.
func (u *Universe) Lookup(c relation.Conjunction) (id int, ok bool) {
	return u.index.lookup(c)
}

// Children returns the candidate IDs that extend the conjunction with
// parent key parentKey by one predicate over dimension dim. The root's
// key is "".
func (u *Universe) Children(parentKey string, dim int) []int {
	if byDim, ok := u.children[parentKey]; ok {
		return byDim[dim]
	}
	return nil
}

// NumTimestamps returns n, the length of the aggregated series.
func (u *Universe) NumTimestamps() int { return len(u.total) }

// ApproxBytes estimates the heap footprint of the universe's bulk state:
// the raw candidate-series arena (unless it aliases a snapshot mapping —
// mapped bytes are kernel-evictable and reported by MappedBytes), the
// smoothed views and prefix sums, the candidate records and index, the
// drill-down adjacency and ancestor closure, the taxonomy tables, and
// the relation's hierarchy/derived-column state. It deliberately ignores
// small fixed overheads — the serving layer's memory budget only needs a
// consistent relative cost per pooled engine, not an exact accounting —
// but every structure that scales with candidates or rows is counted, so
// hierarchical and range-binned datasets no longer undercharge eviction.
func (u *Universe) ApproxBytes() int64 {
	const scSize = 16 // relation.SumCount: two float64s
	var b int64
	if !u.arenaMapped {
		b += int64(cap(u.raw)) * scSize
	}
	b += int64(cap(u.rawTotal)) * scSize
	if u.smooth != nil {
		b += int64(cap(u.smooth.arena)+cap(u.smooth.total)+
			cap(u.smooth.prefix)+cap(u.smooth.totPrefix)) * scSize
	}
	// Candidate records, conjunctions, and candidate-index entries: ~96
	// bytes each on 64-bit platforms, measured coarsely.
	b += int64(len(u.cands)) * 96
	// Drill-down adjacency: the flat per-node dimension vectors plus the
	// child ids themselves, and the legacy string-keyed mirror (map
	// buckets + key strings, counted coarsely per parent node).
	for _, byPos := range u.childrenFlat {
		if byPos == nil {
			continue
		}
		b += 24 * int64(len(byPos)) // slice headers
		for _, kids := range byPos {
			b += 4 * int64(cap(kids))
		}
	}
	b += 64 * int64(len(u.children))
	// Ancestor closure (CSR) and the explain-by position map.
	b += 4 * int64(cap(u.ancOff)+cap(u.ancIDs)+cap(u.dimPos))
	// Taxonomy tables: per-candidate hierarchy/level columns plus each
	// kept hierarchy's level metadata.
	b += 4 * int64(cap(u.hierOf)+cap(u.hierLevel))
	for i := range u.hier {
		b += 20 * int64(len(u.hier[i].kept)) // kept/dims/pos per level
	}
	// Relation-side state this universe forced into existence and keeps
	// reachable: hierarchy parent maps and derived (path-level and
	// range-bin) columns. The relation is shared between engines of one
	// dataset, so this coarsely double-charges shared state — erring
	// toward overcharging keeps eviction safe, where the old accounting
	// undercharged it to zero.
	b += u.rel.DerivedBytes()
	return b
}

// MappedBytes reports the size of the candidate arena when it aliases a
// read-only snapshot mapping, and 0 for heap-backed universes. Mapped
// bytes are kernel-evictable: they cost address space and page-cache
// residency under load, not Go heap, so the serving layer budgets them
// separately from ApproxBytes.
func (u *Universe) MappedBytes() int64 {
	if !u.arenaMapped {
		return 0
	}
	return int64(len(u.raw)) * 16
}

// ArenaMapped reports whether the candidate arena aliases a read-only
// snapshot mapping (see DecodeUniverseSnapshotAlias).
func (u *Universe) ArenaMapped() bool { return u.arenaMapped }

// SetBacking pins the owner of a mapped arena's bytes (the catalog's
// mmapfile handle) to the universe, keeping the mapping alive while the
// universe — or any slice into its arena — is reachable. The owner's
// finalizer unmaps once the universe is collected.
func (u *Universe) SetBacking(b interface{ Close() error }) { u.backing = b }

// TotalSeries returns the decomposed overall aggregate per timestamp.
func (u *Universe) TotalSeries() []relation.SumCount { return u.total }

// TotalValues evaluates the overall aggregated time series ts(R).
func (u *Universe) TotalValues() []float64 {
	return relation.Values(u.agg, u.total)
}

// CandidateValues evaluates candidate id's aggregated series ts(σ_E R).
func (u *Universe) CandidateValues(id int) []float64 {
	return relation.Values(u.agg, u.cands[id].Series)
}

// Describe renders candidate id's conjunction with names resolved.
func (u *Universe) Describe(id int) string {
	return u.cands[id].Conj.String(u.rel)
}
