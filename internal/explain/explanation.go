// Package explain implements candidate explanations and difference
// metrics for TSExplain.
//
// An explanation E (Definition 3.1) is a conjunction of equality
// predicates over the user-selected explain-by attributes. This package
// enumerates every candidate explanation that occurs in the relation up to
// an order threshold β̄, precomputes each candidate's decomposed aggregate
// time series (the "data cube" access of Section 5.2 module a), and scores
// candidates over arbitrary segments with the difference-metric library:
// absolute-change (Definition 3.2, the paper's default), relative-change,
// and risk-ratio.
package explain

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Candidate is one enumerated explanation together with its precomputed
// per-timestamp aggregate state.
type Candidate struct {
	// ID is the candidate's dense index within its Universe.
	ID int
	// Conj is the predicate conjunction selecting the candidate's data
	// slice.
	Conj relation.Conjunction
	// Series is the decomposed aggregate of σ_E R per timestamp.
	Series []relation.SumCount
}

// Universe holds every candidate explanation for one (relation, measure,
// aggregate, explain-by attributes) quadruple, plus the overall aggregated
// series. It is the output of the Preprocessing module and the input to
// the Cascading Analysts and K-Segmentation modules.
type Universe struct {
	rel       *relation.Relation
	agg       relation.AggFunc
	measure   int
	explainBy []int // dimension indexes, sorted
	maxOrder  int

	total []relation.SumCount
	cands []*Candidate
	index *candIndex

	// children indexes candidate extensions for the drill-down tree:
	// children[parentKey][dim] lists candidate IDs whose conjunction is the
	// parent conjunction extended by one predicate over dim.
	children map[string]map[int][]int
	// childrenByID is the same adjacency keyed by parent candidate ID
	// (index 0 is the root, index id+1 is candidate id), the form the
	// Cascading Analysts hot path uses to avoid string keys.
	childrenByID []map[int][]int
	// ancestors[id] lists the candidate IDs of every non-empty
	// sub-conjunction of candidate id (itself included).
	ancestors [][]int

	// raw is the candidate-major series arena: candidate id's decomposed
	// raw (pre-smoothing) series occupies raw[id*arenaCap : id*arenaCap+T].
	// The stride leaves tail headroom under Config.Streaming so appends
	// extend series in place instead of reallocating per update.
	raw      []relation.SumCount
	arenaCap int
	// rawTotal is the raw overall aggregate series; total aliases it until
	// Smooth replaces the active view with the smoothed one.
	rawTotal []relation.SumCount

	smooth *smoothState // non-nil once Smooth ran on an arena-backed universe
	stream *streamState // non-nil when built with Config.Streaming
}

// streamState is the retained pass-1 state that lets Append consume only
// newly arrived rows: one group-by plan per explain-by subset, plus the
// mapping from each plan's group ranks to universe candidate IDs.
type streamState struct {
	subsets  [][]int
	plans    []*relation.GroupByPlan
	candOf   [][]int // per subset: group rank -> candidate ID
	ingested int     // relation rows already consumed
	workers  int
}

// Config controls candidate enumeration.
type Config struct {
	// Measure is the name of the measure attribute M.
	Measure string
	// Agg is the aggregate function f.
	Agg relation.AggFunc
	// ExplainBy lists the explain-by attribute names A. Empty means all
	// dimension attributes, following the paper's default.
	ExplainBy []string
	// MaxOrder is the order threshold β̄ (default 3).
	MaxOrder int
	// Parallelism fans the per-subset group-bys of candidate enumeration
	// across this many goroutines. 0 or 1 builds the universe serially;
	// the resulting candidate IDs, series, and adjacency are identical
	// either way.
	Parallelism int
	// Streaming retains the group-by plans and allocates the series arena
	// with tail headroom so Append can extend the universe from newly
	// arrived rows in O(delta). One-shot universes leave it false and pay
	// neither the headroom nor the retained plan state.
	Streaming bool
	// Cancel, when non-nil, is polled between units of enumeration work; a
	// non-nil return aborts construction with that error. The serving
	// layer passes ctx.Err here so a request deadline stops a half-built
	// universe instead of letting it run to completion.
	Cancel func() error
}

// candIndex resolves a conjunction to its candidate ID. When the relation
// fits (≤ 16 dims, dictionaries ≤ 65536, β̄ ≤ 3 — every configuration the
// engine meets in practice) it is keyed by packed uint64 conjunctions and
// the hot paths never build a string; otherwise it transparently falls
// back to the legacy Conjunction.Key() strings.
type candIndex struct {
	packed map[relation.PackedConj]int
	str    map[string]int
}

func newCandIndex(r *relation.Relation, maxOrder int) *candIndex {
	if relation.CanPackConjs(r, maxOrder) {
		return &candIndex{packed: make(map[relation.PackedConj]int)}
	}
	return &candIndex{str: make(map[string]int)}
}

func (ix *candIndex) insert(c relation.Conjunction, id int) {
	if ix.packed != nil {
		if k, ok := relation.PackConj(c); ok {
			ix.packed[k] = id
			return
		}
		// Unreachable when newCandIndex vetted the relation; guard anyway.
		ix.str = make(map[string]int)
		for k, v := range ix.packed {
			ix.str[k.Unpack().Key()] = v
		}
		ix.packed = nil
	}
	ix.str[c.Key()] = id
}

func (ix *candIndex) lookup(c relation.Conjunction) (int, bool) {
	if ix.packed != nil {
		if k, ok := relation.PackConj(c); ok {
			id, ok := ix.packed[k]
			return id, ok
		}
		return 0, false
	}
	id, ok := ix.str[c.Key()]
	return id, ok
}

// NewUniverse enumerates all candidate explanations of order ≤ β̄ that
// occur in r and precomputes their aggregate series.
func NewUniverse(r *relation.Relation, cfg Config) (*Universe, error) {
	m := r.MeasureIndex(cfg.Measure)
	if m < 0 {
		return nil, fmt.Errorf("explain: unknown measure %q", cfg.Measure)
	}
	maxOrder := cfg.MaxOrder
	if maxOrder <= 0 {
		maxOrder = 3
	}
	var dims []int
	if len(cfg.ExplainBy) == 0 {
		for i := 0; i < r.NumDims(); i++ {
			dims = append(dims, i)
		}
	} else {
		for _, name := range cfg.ExplainBy {
			d := r.DimIndex(name)
			if d < 0 {
				return nil, fmt.Errorf("explain: unknown explain-by attribute %q", name)
			}
			dims = append(dims, d)
		}
		sort.Ints(dims)
		for i := 1; i < len(dims); i++ {
			if dims[i] == dims[i-1] {
				return nil, fmt.Errorf("explain: duplicate explain-by attribute %q", r.Dim(dims[i]).Name())
			}
		}
	}
	if maxOrder > len(dims) {
		maxOrder = len(dims)
	}

	u := &Universe{
		rel:       r,
		agg:       cfg.Agg,
		measure:   m,
		explainBy: dims,
		maxOrder:  maxOrder,
		rawTotal:  r.AggregateSeries(m),
		index:     newCandIndex(r, maxOrder),
		children:  make(map[string]map[int][]int),
	}
	u.total = u.rawTotal

	// Enumerate every attribute subset of size 1..β̄ and group-by each
	// with the columnar kernel: plan all subsets (pass 1), allocate ONE
	// candidate-major arena backing every candidate's series, then fill
	// the disjoint arena ranges (pass 2). Both passes fan across the
	// worker pool; the kernel orders each subset's groups by id tuple, so
	// candidate IDs are deterministic and identical at any parallelism.
	workers := cfg.Parallelism
	cancel := cfg.Cancel
	if cancel == nil {
		cancel = func() error { return nil }
	}
	subsetList := subsets(dims, maxOrder)
	plans := make([]*relation.GroupByPlan, len(subsetList))
	runIndexed(len(subsetList), workers, func(i int) {
		if cancel() != nil {
			return
		}
		plans[i] = r.PlanGroupBy(subsetList[i], m)
	})
	if err := cancel(); err != nil {
		return nil, err
	}
	T := r.NumTimestamps()
	offsets := make([]int, len(plans)+1)
	for i, p := range plans {
		offsets[i+1] = offsets[i] + p.NumGroups()
	}
	totalGroups := offsets[len(plans)]
	// Streaming universes get segcache-style headroom in both dimensions
	// (timestamps per series, candidate slots) so the common append —
	// later days, maybe a few new candidates — never reallocates.
	u.arenaCap = T
	slotCap := totalGroups
	if cfg.Streaming {
		u.arenaCap = T + T/2 + 8
		slotCap = totalGroups + totalGroups/4 + 16
		grown := make([]relation.SumCount, T, u.arenaCap)
		copy(grown, u.rawTotal)
		u.rawTotal = grown
		u.total = u.rawTotal
	}
	u.raw = make([]relation.SumCount, slotCap*u.arenaCap)
	runIndexed(len(plans), workers, func(i int) {
		if plans[i].NumGroups() == 0 || cancel() != nil {
			return
		}
		plans[i].FillArena(u.raw[offsets[i]*u.arenaCap:(offsets[i]+plans[i].NumGroups())*u.arenaCap], u.arenaCap)
	})
	if err := cancel(); err != nil {
		return nil, err
	}
	u.cands = make([]*Candidate, 0, totalGroups)
	for si, p := range plans {
		subset := subsetList[si]
		for g, ng := 0, p.NumGroups(); g < ng; g++ {
			ids := p.GroupIDsAt(g)
			conj := make(relation.Conjunction, len(subset))
			for i := range subset {
				conj[i] = relation.Pred{Dim: subset[i], Value: ids[i]}
			}
			id := len(u.cands)
			c := &Candidate{ID: id, Conj: conj, Series: u.raw[id*u.arenaCap : id*u.arenaCap+T : (id+1)*u.arenaCap]}
			u.cands = append(u.cands, c)
			u.index.insert(conj, id)
		}
	}
	if cfg.Streaming {
		candOf := make([][]int, len(plans))
		for si := range plans {
			ids := make([]int, plans[si].NumGroups())
			for g := range ids {
				ids[g] = offsets[si] + g
			}
			candOf[si] = ids
		}
		u.stream = &streamState{
			subsets:  subsetList,
			plans:    plans,
			candOf:   candOf,
			ingested: r.NumRows(),
			workers:  workers,
		}
	}

	u.buildDerivedIndexes()
	return u, nil
}

// buildDerivedIndexes computes the state derived purely from the
// candidate list and index: the drill-down adjacency and the ancestor
// closure. It is shared by NewUniverse and the snapshot decoder — a
// restored universe rebuilds this cheap derived state in memory instead
// of persisting it.
func (u *Universe) buildDerivedIndexes() {
	// Build the drill-down adjacency: each candidate of order β is a child
	// of each of its β order-(β−1) prefixes, under the removed dimension.
	u.childrenByID = make([]map[int][]int, len(u.cands)+1)
	for _, c := range u.cands {
		for _, p := range c.Conj {
			parent := c.Conj.Without(p.Dim)
			parentKey := parent.Key()
			byDim, ok := u.children[parentKey]
			if !ok {
				byDim = make(map[int][]int)
				u.children[parentKey] = byDim
			}
			byDim[p.Dim] = append(byDim[p.Dim], c.ID)

			parentID := 0 // root
			if len(parent) > 0 {
				id, ok := u.index.lookup(parent)
				if !ok {
					// Every prefix of an occurring conjunction occurs, so
					// this is unreachable; guard anyway.
					continue
				}
				parentID = id + 1
			}
			if u.childrenByID[parentID] == nil {
				u.childrenByID[parentID] = make(map[int][]int)
			}
			u.childrenByID[parentID][p.Dim] = append(u.childrenByID[parentID][p.Dim], c.ID)
		}
	}
	// Sort child lists once so the DP and its extraction never re-sort.
	for _, byDim := range u.childrenByID {
		for _, kids := range byDim {
			sort.Ints(kids)
		}
	}

	// Precompute each candidate's ancestor closure (every non-empty
	// sub-conjunction, itself included). The Cascading Analysts DP uses
	// it to prune drill-down to subtrees that can still reach a
	// selectable candidate.
	u.ancestors = make([][]int, len(u.cands))
	for id, c := range u.cands {
		subs := conjSubsets(c.Conj)
		anc := make([]int, 0, len(subs))
		for _, sub := range subs {
			if aid, ok := u.index.lookup(sub); ok {
				anc = append(anc, aid)
			}
		}
		u.ancestors[id] = anc
	}
}

// conjSubsets enumerates every non-empty sub-conjunction of c (c itself
// included). A conjunction of order β has 2^β − 1 of them.
func conjSubsets(c relation.Conjunction) []relation.Conjunction {
	var out []relation.Conjunction
	n := len(c)
	for mask := 1; mask < 1<<n; mask++ {
		sub := make(relation.Conjunction, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, c[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

// AncestorsOf returns the candidate IDs of every non-empty
// sub-conjunction of candidate id, id itself included.
func (u *Universe) AncestorsOf(id int) []int { return u.ancestors[id] }

// ChildrenOf returns the candidate IDs extending node nodeID (-1 for the
// root) by one predicate over dimension dim, sorted ascending.
func (u *Universe) ChildrenOf(nodeID, dim int) []int {
	byDim := u.childrenByID[nodeID+1]
	if byDim == nil {
		return nil
	}
	return byDim[dim]
}

// subsets returns all non-empty subsets of dims with size ≤ maxSize, each
// sorted ascending.
func subsets(dims []int, maxSize int) [][]int {
	var out [][]int
	n := len(dims)
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, dims[i]))
		}
	}
	rec(0, nil)
	return out
}

// Relation returns the underlying relation.
func (u *Universe) Relation() *relation.Relation { return u.rel }

// Agg returns the aggregate function being explained.
func (u *Universe) Agg() relation.AggFunc { return u.agg }

// MeasureIndex returns the measure attribute index being aggregated.
func (u *Universe) MeasureIndex() int { return u.measure }

// ExplainBy returns the explain-by dimension indexes (sorted).
func (u *Universe) ExplainBy() []int {
	return append([]int(nil), u.explainBy...)
}

// MaxOrder returns the enumeration order threshold β̄.
func (u *Universe) MaxOrder() int { return u.maxOrder }

// NumCandidates returns ε, the number of candidate explanations.
func (u *Universe) NumCandidates() int { return len(u.cands) }

// Candidate returns the candidate with the given dense ID.
func (u *Universe) Candidate(id int) *Candidate { return u.cands[id] }

// Lookup resolves a conjunction to its candidate ID; ok is false when the
// conjunction never occurs in the data.
func (u *Universe) Lookup(c relation.Conjunction) (id int, ok bool) {
	return u.index.lookup(c)
}

// Children returns the candidate IDs that extend the conjunction with
// parent key parentKey by one predicate over dimension dim. The root's
// key is "".
func (u *Universe) Children(parentKey string, dim int) []int {
	if byDim, ok := u.children[parentKey]; ok {
		return byDim[dim]
	}
	return nil
}

// NumTimestamps returns n, the length of the aggregated series.
func (u *Universe) NumTimestamps() int { return len(u.total) }

// ApproxBytes estimates the heap footprint of the universe's bulk state:
// the raw candidate-series arena, the smoothed views and prefix sums, and
// the candidate records. It deliberately ignores small fixed overheads —
// the serving layer's memory budget only needs a consistent relative cost
// per pooled engine, not an exact accounting.
func (u *Universe) ApproxBytes() int64 {
	const scSize = 16 // relation.SumCount: two float64s
	b := int64(cap(u.raw)+cap(u.rawTotal)) * scSize
	if u.smooth != nil {
		b += int64(cap(u.smooth.arena)+cap(u.smooth.total)+
			cap(u.smooth.prefix)+cap(u.smooth.totPrefix)) * scSize
	}
	// Candidate records, conjunctions, index entries, and adjacency: ~96
	// bytes each on 64-bit platforms, measured coarsely.
	b += int64(len(u.cands)) * 96
	return b
}

// TotalSeries returns the decomposed overall aggregate per timestamp.
func (u *Universe) TotalSeries() []relation.SumCount { return u.total }

// TotalValues evaluates the overall aggregated time series ts(R).
func (u *Universe) TotalValues() []float64 {
	return relation.Values(u.agg, u.total)
}

// CandidateValues evaluates candidate id's aggregated series ts(σ_E R).
func (u *Universe) CandidateValues(id int) []float64 {
	return relation.Values(u.agg, u.cands[id].Series)
}

// Describe renders candidate id's conjunction with names resolved.
func (u *Universe) Describe(id int) string {
	return u.cands[id].Conj.String(u.rel)
}
