package explain

import "math"

// FilterLowSupport implements the "filter" optimization of Section 7.5.1:
// a candidate explanation is dropped when, at every timestamp, the
// absolute value of its aggregated series is below ratio times the
// absolute value of the overall aggregated series. Such slices are too
// small to ever matter and only slow the Cascading Analysts module down.
//
// It returns the IDs of the surviving candidates (in ascending order). The
// Universe itself is not modified, so callers can compare filtered and
// unfiltered runs. ratio ≤ 0 keeps everything. The paper's default ratio
// is 0.001.
func (u *Universe) FilterLowSupport(ratio float64) []int {
	ids := make([]int, 0, len(u.cands))
	if ratio <= 0 {
		for id := range u.cands {
			ids = append(ids, id)
		}
		return ids
	}
	totalVals := u.TotalValues()
	for id, cand := range u.cands {
		keep := false
		for t, sc := range cand.Series {
			v := math.Abs(u.agg.Eval(sc.Sum, sc.Count))
			if v >= ratio*math.Abs(totalVals[t]) && v > 0 {
				keep = true
				break
			}
		}
		if keep {
			ids = append(ids, id)
		}
	}
	return ids
}

// AllCandidateIDs returns every candidate ID in ascending order,
// equivalent to FilterLowSupport with a non-positive ratio.
func (u *Universe) AllCandidateIDs() []int {
	return u.FilterLowSupport(0)
}

// FirstQualifying returns the first position t ≥ from at which candidate
// id passes the support filter — |v| ≥ ratio·|total| and |v| > 0, the
// exact keep condition of FilterLowSupport — or -1 when none does.
// totalVals must be the universe's TotalValues(); callers scanning many
// candidates compute it once. The incremental engine uses this to
// maintain the filtered set in O(changed suffix) per append: a candidate
// whose first qualifying position precedes the change is still kept
// without rescanning, and everything else only rescans from the change.
func (u *Universe) FirstQualifying(id, from int, ratio float64, totalVals []float64) int {
	cand := u.cands[id]
	for t := from; t < len(totalVals); t++ {
		sc := cand.Series[t]
		v := math.Abs(u.agg.Eval(sc.Sum, sc.Count))
		if v >= ratio*math.Abs(totalVals[t]) && v > 0 {
			return t
		}
	}
	return -1
}
