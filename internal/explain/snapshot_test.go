package explain

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/relation"
)

// universesEquivalent asserts the decoded universe reproduces the
// original's candidate set, series, index, adjacency, and ancestry
// bit for bit.
func universesEquivalent(t *testing.T, a, b *Universe) {
	t.Helper()
	if a.NumCandidates() != b.NumCandidates() || a.NumTimestamps() != b.NumTimestamps() {
		t.Fatalf("shape mismatch: (%d cands, %d T) vs (%d cands, %d T)",
			a.NumCandidates(), a.NumTimestamps(), b.NumCandidates(), b.NumTimestamps())
	}
	if a.MaxOrder() != b.MaxOrder() || a.Agg() != b.Agg() || a.MeasureIndex() != b.MeasureIndex() {
		t.Fatalf("query shape mismatch")
	}
	if !reflect.DeepEqual(a.ExplainBy(), b.ExplainBy()) {
		t.Fatalf("explain-by mismatch: %v vs %v", a.ExplainBy(), b.ExplainBy())
	}
	if !reflect.DeepEqual(a.TotalSeries(), b.TotalSeries()) {
		t.Fatalf("total series differ")
	}
	for id := 0; id < a.NumCandidates(); id++ {
		ca, cb := a.Candidate(id), b.Candidate(id)
		if !reflect.DeepEqual(ca.Conj, cb.Conj) {
			t.Fatalf("candidate %d conjunction %v vs %v", id, ca.Conj, cb.Conj)
		}
		if !reflect.DeepEqual(ca.Series, cb.Series) {
			t.Fatalf("candidate %d series differ", id)
		}
		if got, ok := b.Lookup(ca.Conj); !ok || got != id {
			t.Fatalf("candidate %d not resolvable through decoded index (got %d, %v)", id, got, ok)
		}
		if !reflect.DeepEqual(a.AncestorsOf(id), b.AncestorsOf(id)) {
			t.Fatalf("candidate %d ancestors differ", id)
		}
	}
	for _, dim := range a.ExplainBy() {
		if !reflect.DeepEqual(a.ChildrenOf(-1, dim), b.ChildrenOf(-1, dim)) {
			t.Fatalf("root children under dim %d differ", dim)
		}
	}
}

func TestUniverseSnapshotRoundTrip(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "region"}, MaxOrder: 2})

	var relBuf, uniBuf bytes.Buffer
	if err := r.WriteSnapshot(&relBuf); err != nil {
		t.Fatal(err)
	}
	if err := u.WriteSnapshot(&uniBuf); err != nil {
		t.Fatal(err)
	}
	rel2, err := relation.ReadSnapshot(&relBuf)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ReadUniverseSnapshot(bytes.NewReader(uniBuf.Bytes()), rel2)
	if err != nil {
		t.Fatal(err)
	}
	universesEquivalent(t, u, u2)

	// A restored universe must accept smoothing like a built one.
	u2.Smooth(3)
	u3, err := NewUniverse(r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "region"}, MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	u3.Smooth(3)
	for id := 0; id < u3.NumCandidates(); id++ {
		if !reflect.DeepEqual(u3.Candidate(id).Series, u2.Candidate(id).Series) {
			t.Fatalf("candidate %d smoothed series differ between built and restored universes", id)
		}
	}
}

func TestUniverseSnapshotRejectsWrongRelation(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}})
	var buf bytes.Buffer
	if err := u.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// A relation with a different series length must be rejected.
	b := relation.NewBuilder("other", "date", []string{"state"}, []string{"cases"})
	for _, d := range []string{"d1", "d2"} {
		if err := b.Append(d, []string{"NY"}, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	short, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadUniverseSnapshot(bytes.NewReader(buf.Bytes()), short); err == nil {
		t.Fatal("snapshot bound to a mismatched relation decoded without error")
	}
}

func TestUniverseSnapshotTruncated(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "region"}, MaxOrder: 2})
	var buf bytes.Buffer
	if err := u.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 3, 9, len(full) / 3, len(full) / 2, len(full) - 1} {
		if _, err := ReadUniverseSnapshot(bytes.NewReader(full[:cut]), r); err == nil {
			t.Fatalf("truncation at %d of %d decoded without error", cut, len(full))
		}
	}
}

func TestUniverseSnapshotRefusesSmoothed(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}})
	u.Smooth(3)
	var buf bytes.Buffer
	if err := u.WriteSnapshot(&buf); err == nil {
		t.Fatal("smoothed universe snapshot written without error")
	}
}

func TestUniverseSnapshotStreamingUniverse(t *testing.T) {
	// An unsmoothed streaming universe (arena with headroom) must encode
	// through the same path, stride and all.
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}, Streaming: true})
	var buf bytes.Buffer
	if err := u.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	u2, err := ReadUniverseSnapshot(bytes.NewReader(buf.Bytes()), r)
	if err != nil {
		t.Fatal(err)
	}
	universesEquivalent(t, u, u2)
}
