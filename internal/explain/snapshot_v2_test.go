package explain

import (
	"bytes"
	"testing"

	"repro/internal/relation"
)

// TestUniverseSnapshotV1CrossRestore guards the compatibility promise for
// the universe section: a payload written by the legacy fixed-width v1
// encoder must restore through the current reader with candidate ids,
// series, and adjacency intact.
func TestUniverseSnapshotV1CrossRestore(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "region"}, MaxOrder: 2})

	var buf bytes.Buffer
	sw := relation.NewSnapWriter(&buf)
	if err := u.EncodeSnapshotV1(sw); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	u2, err := ReadUniverseSnapshot(bytes.NewReader(buf.Bytes()), r)
	if err != nil {
		t.Fatal(err)
	}
	universesEquivalent(t, u, u2)

	// The same payload must also decode via the byte-slice reader the
	// catalog restore path uses.
	u3, err := DecodeUniverseSnapshot(relation.NewSnapReaderBytes(buf.Bytes()), r)
	if err != nil {
		t.Fatal(err)
	}
	universesEquivalent(t, u, u3)
}

// TestUniverseSnapshotV2Smaller pins the size win of the v2 section on a
// sparse candidate universe.
func TestUniverseSnapshotV2Smaller(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state", "region"}, MaxOrder: 2})

	var v1, v2 bytes.Buffer
	sw := relation.NewSnapWriter(&v1)
	if err := u.EncodeSnapshotV1(sw); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := u.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	if v2.Len() >= v1.Len() {
		t.Fatalf("v2 universe section (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), v1.Len())
	}
}

// TestUniverseSnapshotCorruptPredicates checks the v2 predicate decoding
// rejects out-of-range dimension and value ids instead of indexing with
// them.
func TestUniverseSnapshotCorruptPredicates(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}})
	var buf bytes.Buffer
	if err := u.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flipping bytes anywhere in the payload must never panic: it either
	// still decodes (the flip hit a value byte) or errors cleanly.
	for i := 0; i < len(full); i++ {
		bad := append([]byte(nil), full...)
		bad[i] ^= 0xFF
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("byte flip at %d/%d panicked: %v", i, len(full), p)
				}
			}()
			_, _ = ReadUniverseSnapshot(bytes.NewReader(bad), r)
		}()
	}
}
