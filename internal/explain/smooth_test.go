package explain

import (
	"math"
	"testing"

	"repro/internal/relation"
)

// buildNoisy builds a one-category relation with a sawtooth series so
// smoothing has a visible effect.
func buildNoisy(t *testing.T) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("x", "d", []string{"c"}, []string{"v"})
	for i := 0; i < 12; i++ {
		v := 100.0
		if i%2 == 0 {
			v = 200
		}
		label := string(rune('a' + i))
		_ = b.Append(label, []string{"only"}, []float64{v})
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSmooth(t *testing.T) {
	r := buildNoisy(t)
	u, err := NewUniverse(r, Config{Measure: "v", Agg: relation.Sum})
	if err != nil {
		t.Fatal(err)
	}
	before := u.TotalValues()
	u.Smooth(3)
	after := u.TotalValues()
	// Interior points become local averages: sawtooth flattens.
	varBefore, varAfter := spread(before[2:10]), spread(after[2:10])
	if varAfter >= varBefore {
		t.Errorf("smoothing did not reduce spread: %g -> %g", varBefore, varAfter)
	}
	// The candidate series must be smoothed consistently with the total
	// (one category: they are equal).
	cand := u.CandidateValues(0)
	for i := range after {
		if math.Abs(cand[i]-after[i]) > 1e-9 {
			t.Fatalf("candidate and total smoothed differently at %d", i)
		}
	}
	// window ≤ 1 is a no-op.
	u2, _ := NewUniverse(r, Config{Measure: "v", Agg: relation.Sum})
	u2.Smooth(1)
	again := u2.TotalValues()
	for i := range before {
		if again[i] != before[i] {
			t.Fatal("Smooth(1) changed values")
		}
	}
}

func spread(v []float64) float64 {
	lo, hi := v[0], v[0]
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi - lo
}

func TestSliceTime(t *testing.T) {
	r := buildNoisy(t)
	u, err := NewUniverse(r, Config{Measure: "v", Agg: relation.Sum})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := u.SliceTime(3, 8)
	if err != nil {
		t.Fatalf("SliceTime: %v", err)
	}
	if got, want := sub.NumTimestamps(), 6; got != want {
		t.Fatalf("sliced n = %d, want %d", got, want)
	}
	full := u.TotalValues()
	sliced := sub.TotalValues()
	for i := range sliced {
		if sliced[i] != full[3+i] {
			t.Errorf("sliced[%d] = %g, want %g", i, sliced[i], full[3+i])
		}
	}
	// γ over the slice equals γ over the same absolute positions.
	gFull, eFull := u.Gamma(0, 3, 8, AbsoluteChange)
	gSub, eSub := sub.Gamma(0, 0, 5, AbsoluteChange)
	if gFull != gSub || eFull != eSub {
		t.Errorf("slice γ = (%g,%v), want (%g,%v)", gSub, eSub, gFull, eFull)
	}
	// Candidate set is shared.
	if sub.NumCandidates() != u.NumCandidates() {
		t.Error("slice changed the candidate set")
	}
	// Invalid ranges error.
	for _, rng := range [][2]int{{-1, 5}, {3, 20}, {5, 5}, {8, 3}} {
		if _, err := u.SliceTime(rng[0], rng[1]); err == nil {
			t.Errorf("SliceTime(%d,%d): want error", rng[0], rng[1])
		}
	}
}
