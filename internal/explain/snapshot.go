package explain

import (
	"fmt"
	"io"

	"repro/internal/relation"
)

// This file implements the universe half of the warm-restart snapshot
// codec. The expensive part of building a Universe is the group-by over
// the raw relation rows (pass 1 slot discovery + pass 2 arena fill for
// every explain-by subset); the snapshot persists exactly that output —
// the candidate conjunctions and the candidate-major series arena — and
// rebuilds the cheap derived state (candidate index, drill-down
// adjacency, ancestor closure) in memory on load. Snapshots always hold
// the RAW (pre-smoothing) arena: one snapshot therefore serves every
// engine configuration (any smoothing window, optimized or vanilla), and
// smoothing re-runs in O(candidates × T) on the restored arena.
//
// Snapshots are one-shot: a restored universe is not built for streaming
// (the group-by plans are not persisted), so the streaming append path
// re-enumerates from the relation as before.

const (
	uniSnapMagic = "TSXU"
	// v1 stores the arena as raw (f64, f64) pairs; v2 stores each series
	// through the relation codec's compact layouts (sparse zero-run +
	// varint packing) and frames lengths as varints. v3 keeps the v2
	// framing for every small section but stores the candidate-series
	// arena as ONE contiguous raw little-endian block, padded so its
	// absolute file offset is 16-aligned: a memory-mapped snapshot can
	// then alias the arena in place as []SumCount — the runtime
	// representation IS the on-disk representation, restore is
	// near-zero-copy, and the kernel pages cold candidates out instead
	// of the arena living on the heap. Writers emit v3 only above
	// ArenaSnapshotThreshold (small arenas compress better under v2 and
	// are cheap to materialize anyway); readers accept all three.
	uniSnapVersion1 = 1
	uniSnapVersion2 = 2
	uniSnapVersion3 = 3
)

// ArenaSnapshotThreshold is the raw arena size (candidates × timestamps
// × 16 bytes) at or above which EncodeSnapshot switches to the v3
// mappable layout. Below it the compact v2 layouts win on disk — the
// catalog's snapshot ≤ 0.5× CSV footprint contract depends on that for
// the bundled datasets — and materializing a few megabytes on restore
// costs nothing. It is a variable so tests can force the v3 path on
// tiny datasets.
var ArenaSnapshotThreshold int64 = 32 << 20

// WriteSnapshot encodes the universe's snapshot section: the query shape
// (measure, aggregate, explain-by, order threshold), the raw overall
// series, and every candidate's conjunction and raw series. The universe
// must be unsmoothed — smoothing replaces the raw arena views, and
// persisting a smoothed arena would bake one smoothing window into a file
// meant to serve all of them.
func (u *Universe) WriteSnapshot(w io.Writer) error {
	sw := relation.NewSnapWriter(w)
	if err := u.EncodeSnapshot(sw); err != nil {
		return err
	}
	return sw.Flush()
}

// EncodeSnapshot appends the universe's snapshot section to an existing
// snapshot writer (the catalog writes the relation and universe sections
// into one checksummed file). Arenas at or above ArenaSnapshotThreshold
// are written in the v3 mappable layout (see ArenaSnapshotRaw); smaller
// ones keep the compact v2 layout.
func (u *Universe) EncodeSnapshot(sw *relation.SnapWriter) error {
	if err := u.snapshotable(); err != nil {
		return err
	}
	T := len(u.total)
	version := uint8(uniSnapVersion2)
	if u.ArenaSnapshotRaw() {
		version = uniSnapVersion3
	}
	sw.Str(uniSnapMagic)
	sw.U8(version)
	sw.VStr(u.rel.Measure(u.measure).Name())
	sw.U8(uint8(u.agg))
	sw.Uvarint(uint64(len(u.explainBy)))
	for _, d := range u.explainBy {
		sw.VStr(u.rel.Dim(d).Name())
	}
	sw.U8(uint8(u.maxOrder))
	sw.Uvarint(uint64(T))
	sw.SumCountsV2(u.rawTotal[:T])
	sw.Uvarint(uint64(len(u.cands)))
	for _, c := range u.cands {
		sw.U8(uint8(len(c.Conj)))
		for _, p := range c.Conj {
			sw.Uvarint(uint64(p.Dim))
			sw.Uvarint(uint64(p.Value))
		}
	}
	if version == uniSnapVersion3 {
		// One contiguous raw arena, stride T (the headroom stride of a
		// streaming build is not persisted), 16-aligned in the file so a
		// mapping can alias it. Each series is T×16 bytes, so alignment
		// established once holds for every candidate.
		sw.Align16()
		for id := range u.cands {
			sw.SumCounts(u.raw[id*u.arenaCap : id*u.arenaCap+T])
		}
		return nil
	}
	for id := range u.cands {
		sw.SumCountsV2(u.raw[id*u.arenaCap : id*u.arenaCap+T])
	}
	return nil
}

// ArenaSnapshotRaw reports whether EncodeSnapshot will store this
// universe's candidate arena in the v3 raw mappable layout. The catalog
// uses it to skip container compression (a compressed payload cannot be
// mapped) and to set the writer's absolute base for alignment.
func (u *Universe) ArenaSnapshotRaw() bool {
	if u.raw == nil || u.smooth != nil {
		return false
	}
	return int64(len(u.cands))*int64(len(u.total))*16 >= ArenaSnapshotThreshold
}

func (u *Universe) snapshotable() error {
	if u.smooth != nil {
		return fmt.Errorf("explain: cannot snapshot a smoothed universe (snapshot the raw build)")
	}
	if u.raw == nil {
		return fmt.Errorf("explain: cannot snapshot a derived universe (no series arena)")
	}
	return nil
}

// EncodeSnapshotV1 writes the legacy fixed-width v1 universe section for
// cross-version tests and old readers.
func (u *Universe) EncodeSnapshotV1(sw *relation.SnapWriter) error {
	if err := u.snapshotable(); err != nil {
		return err
	}
	T := len(u.total)
	sw.Str(uniSnapMagic)
	sw.U8(uniSnapVersion1)
	sw.Str(u.rel.Measure(u.measure).Name())
	sw.U8(uint8(u.agg))
	sw.U32(uint32(len(u.explainBy)))
	for _, d := range u.explainBy {
		sw.Str(u.rel.Dim(d).Name())
	}
	sw.U8(uint8(u.maxOrder))
	sw.U32(uint32(T))
	sw.SumCounts(u.rawTotal[:T])
	sw.U32(uint32(len(u.cands)))
	for _, c := range u.cands {
		sw.U8(uint8(len(c.Conj)))
		for _, p := range c.Conj {
			sw.U32(uint32(p.Dim))
			sw.U32(p.Value)
		}
	}
	for id := range u.cands {
		sw.SumCounts(u.raw[id*u.arenaCap : id*u.arenaCap+T])
	}
	return nil
}

// ReadUniverseSnapshot decodes a universe section written by
// WriteSnapshot and binds it to rel, which must be the relation the
// snapshot was built from (the catalog persists both in one checksummed
// file, so they stay consistent). Every reference into the relation —
// measure and dimension names, dictionary ids, series length — is
// re-validated against rel, so a snapshot paired with the wrong relation
// fails loudly and the caller falls back to rebuilding.
func ReadUniverseSnapshot(r io.Reader, rel *relation.Relation) (*Universe, error) {
	return DecodeUniverseSnapshot(relation.NewSnapReader(r), rel)
}

// DecodeUniverseSnapshot decodes one universe section from an existing
// snapshot reader, the counterpart of EncodeSnapshot. The candidate
// arena is always materialized on the heap; the catalog's mmap restore
// path uses DecodeUniverseSnapshotAlias instead.
func DecodeUniverseSnapshot(sr *relation.SnapReader, rel *relation.Relation) (*Universe, error) {
	return DecodeUniverseSnapshotAlias(sr, rel, false)
}

// DecodeUniverseSnapshotAlias decodes one universe section. With
// aliasArena set, a v3 raw arena section is aliased zero-copy out of
// the reader's backing buffer when the host and offset allow it (see
// relation.SnapReader.AliasSumCounts) — the caller then owns keeping
// that buffer (typically a read-only memory mapping) alive for the
// universe's lifetime, and Universe.ArenaMapped reports true. In every
// other case the arena is copied onto the heap exactly as before.
func DecodeUniverseSnapshotAlias(sr *relation.SnapReader, rel *relation.Relation, aliasArena bool) (*Universe, error) {
	fail := func(format string, args ...any) (*Universe, error) {
		if err := sr.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("explain: snapshot: "+format, args...)
	}
	if magic := sr.Str(); magic != uniSnapMagic {
		return fail("bad magic %q", magic)
	}
	version := sr.U8()
	if version < uniSnapVersion1 || version > uniSnapVersion3 {
		return fail("unsupported version %d (want %d..%d)", version, uniSnapVersion1, uniSnapVersion3)
	}
	// v1 frames with fixed u32 lengths and raw series; v2/v3 with varints
	// and compact series (v3 differs only in the arena block below). The
	// shared decoding flow switches through these shims, so the
	// validation logic exists once.
	rdLen := sr.Len
	rdStr := sr.Str
	rdSeries := sr.SumCountsInto
	if version >= uniSnapVersion2 {
		rdLen = sr.VLen
		rdStr = sr.VStr
		rdSeries = sr.SumCountsV2Into
	}
	measureName := rdStr()
	m := rel.MeasureIndex(measureName)
	if m < 0 {
		return fail("measure %q not in relation", measureName)
	}
	agg := relation.AggFunc(sr.U8())
	if agg != relation.Sum && agg != relation.Count && agg != relation.Avg {
		return fail("unknown aggregate %d", agg)
	}
	nBy := rdLen("explain-by count")
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	explainBy := make([]int, 0, nBy)
	for i := 0; i < nBy; i++ {
		name := rdStr()
		d := rel.DimIndex(name)
		if d < 0 {
			return fail("explain-by attribute %q not in relation", name)
		}
		if len(explainBy) > 0 && d <= explainBy[len(explainBy)-1] {
			return fail("explain-by attributes out of order")
		}
		explainBy = append(explainBy, d)
	}
	maxOrder := int(sr.U8())
	if maxOrder < 1 || maxOrder > len(explainBy) {
		return fail("order threshold %d out of range for %d attributes", maxOrder, len(explainBy))
	}
	T := rdLen("series length")
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	if T != rel.NumTimestamps() {
		return fail("series length %d, relation has %d timestamps", T, rel.NumTimestamps())
	}

	u := &Universe{
		rel:       rel,
		agg:       agg,
		measure:   m,
		explainBy: explainBy,
		maxOrder:  maxOrder,
		rawTotal:  make([]relation.SumCount, T),
		arenaCap:  T,
		index:     newCandIndex(rel, maxOrder),
		children:  make(map[string]map[int][]int),
	}
	rdSeries(u.rawTotal)
	u.total = u.rawTotal

	nCands := rdLen("candidate count")
	if sr.Err() != nil {
		return nil, sr.Err()
	}
	// The arena allocation is bounded by what the stream can actually
	// back: a corrupt count fails the multiplication guard or the
	// subsequent bulk read, never an absurd allocation that outlives it.
	if T > 0 && nCands > (snapArenaCapEntries/T) {
		return fail("candidate count %d × %d timestamps exceeds sanity cap", nCands, T)
	}
	u.cands = make([]*Candidate, 0, nCands)
	for id := 0; id < nCands; id++ {
		order := int(sr.U8())
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		if order < 1 || order > maxOrder {
			return fail("candidate %d order %d out of range (β̄ = %d)", id, order, maxOrder)
		}
		conj := make(relation.Conjunction, order)
		for i := range conj {
			var dim int
			var val uint32
			if version >= uniSnapVersion2 {
				d, v := sr.Uvarint(), sr.Uvarint()
				if d > uint64(rel.NumDims()) || v > uint64(snapArenaCapEntries) {
					return fail("candidate %d predicate out of range", id)
				}
				dim, val = int(d), uint32(v)
			} else {
				dim, val = int(sr.U32()), sr.U32()
			}
			if sr.Err() != nil {
				return nil, sr.Err()
			}
			if dim < 0 || dim >= rel.NumDims() {
				return fail("candidate %d references dimension %d of %d", id, dim, rel.NumDims())
			}
			if int(val) >= rel.Dim(dim).Cardinality() {
				return fail("candidate %d references value %d of dimension %q (%d values)",
					id, val, rel.Dim(dim).Name(), rel.Dim(dim).Cardinality())
			}
			if i > 0 && dim <= conj[i-1].Dim {
				return fail("candidate %d conjunction not in canonical order", id)
			}
			conj[i] = relation.Pred{Dim: dim, Value: val}
		}
		if _, dup := u.index.lookup(conj); dup {
			return fail("candidate %d duplicates an earlier conjunction", id)
		}
		u.cands = append(u.cands, &Candidate{ID: id, Conj: conj})
		u.index.insert(conj, id)
	}
	if version == uniSnapVersion3 {
		// The v3 arena is one contiguous raw block, stride T, 16-aligned
		// in the file. Alias it in place when the caller allows and the
		// buffer cooperates; otherwise bulk-copy it (still one dense
		// little-endian read, no per-series layout dispatch).
		sr.SkipPad()
		if aliasArena {
			if arena, ok := sr.AliasSumCounts(nCands * T); ok {
				u.raw = arena
				u.arenaMapped = true
			}
		}
		if u.raw == nil {
			u.raw = make([]relation.SumCount, nCands*T)
			sr.SumCountsInto(u.raw)
		}
		for id, c := range u.cands {
			c.Series = u.raw[id*T : id*T+T : (id+1)*T]
		}
	} else {
		u.raw = make([]relation.SumCount, nCands*T)
		for id, c := range u.cands {
			s := u.raw[id*T : id*T+T : (id+1)*T]
			rdSeries(s)
			c.Series = s
		}
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}
	u.buildDerivedIndexes()
	return u, nil
}

// snapArenaCapEntries bounds the decoded arena to ~2 GiB of SumCounts so
// corrupt candidate counts cannot trigger absurd allocations.
const snapArenaCapEntries = 1 << 27
