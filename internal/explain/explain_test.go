package explain

import (
	"math"
	"strings"
	"testing"

	"repro/internal/relation"
)

// buildCovidMini builds a 3-state covid-style relation over 4 days with a
// known structure: NY drives the early increase, CA the late one.
func buildCovidMini(t *testing.T) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("covid", "date", []string{"state", "region"}, []string{"cases"})
	type row struct {
		date, state, region string
		cases               float64
	}
	rows := []row{
		{"d1", "NY", "east", 0}, {"d1", "CA", "west", 0}, {"d1", "WA", "west", 0},
		{"d2", "NY", "east", 100}, {"d2", "CA", "west", 5}, {"d2", "WA", "west", 10},
		{"d3", "NY", "east", 120}, {"d3", "CA", "west", 50}, {"d3", "WA", "west", 12},
		{"d4", "NY", "east", 125}, {"d4", "CA", "west", 200}, {"d4", "WA", "west", 15},
	}
	for _, r := range rows {
		if err := b.Append(r.date, []string{r.state, r.region}, []float64{r.cases}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	rel, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return rel
}

func newUniverse(t *testing.T, r *relation.Relation, cfg Config) *Universe {
	t.Helper()
	u, err := NewUniverse(r, cfg)
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	return u
}

func TestEnumerationSingleAttr(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}})
	if got, want := u.NumCandidates(), 3; got != want {
		t.Fatalf("NumCandidates = %d, want %d (one per state)", got, want)
	}
	if got, want := u.NumTimestamps(), 4; got != want {
		t.Fatalf("NumTimestamps = %d, want %d", got, want)
	}
	seen := map[string]bool{}
	for id := 0; id < u.NumCandidates(); id++ {
		seen[u.Describe(id)] = true
	}
	for _, want := range []string{"state=NY", "state=CA", "state=WA"} {
		if !seen[want] {
			t.Errorf("missing candidate %q; have %v", want, seen)
		}
	}
}

func TestEnumerationConjunctions(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum})
	// Dimensions default to all: state (3 values), region (2 values), and
	// the state&region pairs that occur (3: NY-east, CA-west, WA-west).
	if got, want := u.NumCandidates(), 3+2+3; got != want {
		t.Fatalf("NumCandidates = %d, want %d", got, want)
	}
	// Only combinations that occur in the data are enumerated.
	conj, err := relation.NewConjunction(r, map[string]string{"state": "NY", "region": "east"})
	if err != nil {
		t.Fatalf("NewConjunction: %v", err)
	}
	if _, ok := u.Lookup(conj); !ok {
		t.Error("NY&east should be a candidate")
	}
	// NY&west never occurs, so NewConjunction succeeds (both values exist)
	// but Lookup must miss.
	nyID, _ := r.Dim(r.DimIndex("state")).ID("NY")
	westID, _ := r.Dim(r.DimIndex("region")).ID("west")
	miss := relation.Conjunction{
		{Dim: r.DimIndex("state"), Value: nyID},
		{Dim: r.DimIndex("region"), Value: westID},
	}
	if _, ok := u.Lookup(miss); ok {
		t.Error("NY&west never occurs and must not be a candidate")
	}
}

func TestEnumerationMaxOrder(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, MaxOrder: 1})
	if got, want := u.NumCandidates(), 5; got != want {
		t.Fatalf("order-1 NumCandidates = %d, want %d", got, want)
	}
	if got := u.MaxOrder(); got != 1 {
		t.Errorf("MaxOrder = %d, want 1", got)
	}
}

func TestNewUniverseErrors(t *testing.T) {
	r := buildCovidMini(t)
	if _, err := NewUniverse(r, Config{Measure: "nope", Agg: relation.Sum}); err == nil {
		t.Error("unknown measure: want error")
	}
	if _, err := NewUniverse(r, Config{Measure: "cases", ExplainBy: []string{"nope"}}); err == nil {
		t.Error("unknown explain-by: want error")
	}
	if _, err := NewUniverse(r, Config{Measure: "cases", ExplainBy: []string{"state", "state"}}); err == nil {
		t.Error("duplicate explain-by: want error")
	}
}

func TestChildrenAdjacency(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum})
	stateDim := r.DimIndex("state")
	regionDim := r.DimIndex("region")

	// Root's children along state are the three order-1 state candidates.
	rootStates := u.Children("", stateDim)
	if len(rootStates) != 3 {
		t.Fatalf("root children on state = %d, want 3", len(rootStates))
	}
	// Children of region=west along state are CA and WA.
	westConj, _ := relation.NewConjunction(r, map[string]string{"region": "west"})
	kids := u.Children(westConj.Key(), stateDim)
	if len(kids) != 2 {
		t.Fatalf("west children on state = %d, want 2", len(kids))
	}
	for _, id := range kids {
		desc := u.Describe(id)
		if !strings.Contains(desc, "region=west") {
			t.Errorf("child %q does not extend region=west", desc)
		}
	}
	// A leaf (order = number of dims) has no children.
	nyEast, _ := relation.NewConjunction(r, map[string]string{"state": "NY", "region": "east"})
	if got := u.Children(nyEast.Key(), regionDim); got != nil {
		t.Errorf("leaf children = %v, want nil", got)
	}
}

func TestGammaAbsoluteChangeSum(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}})
	ny := lookup(t, u, r, map[string]string{"state": "NY"})
	ca := lookup(t, u, r, map[string]string{"state": "CA"})

	// Over [d1,d2]: overall +115; removing NY leaves +15, so γ(NY)=100.
	g, eff := u.Gamma(ny, 0, 1, AbsoluteChange)
	if g != 100 || eff != Increase {
		t.Errorf("γ(NY,[d1,d2]) = (%g,%v), want (100,+)", g, eff)
	}
	// Over [d3,d4]: CA contributes +150.
	g, eff = u.Gamma(ca, 2, 3, AbsoluteChange)
	if g != 150 || eff != Increase {
		t.Errorf("γ(CA,[d3,d4]) = (%g,%v), want (150,+)", g, eff)
	}
	// For SUM, γ(E) must equal |Δ ts(σ_E R)| on any segment.
	vals := u.CandidateValues(ny)
	for c := 0; c < len(vals); c++ {
		for tt := c + 1; tt < len(vals); tt++ {
			g, _ := u.Gamma(ny, c, tt, AbsoluteChange)
			want := math.Abs(vals[tt] - vals[c])
			if math.Abs(g-want) > 1e-9 {
				t.Fatalf("γ(NY,[%d,%d]) = %g, want %g", c, tt, g, want)
			}
		}
	}
}

func TestGammaDecreaseEffect(t *testing.T) {
	b := relation.NewBuilder("x", "d", []string{"s"}, []string{"m"})
	_ = b.Append("1", []string{"a"}, []float64{10})
	_ = b.Append("1", []string{"b"}, []float64{10})
	_ = b.Append("2", []string{"a"}, []float64{2}) // a drops by 8
	_ = b.Append("2", []string{"b"}, []float64{30})
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u := newUniverse(t, r, Config{Measure: "m", Agg: relation.Sum})
	a := lookup(t, u, r, map[string]string{"s": "a"})
	g, eff := u.Gamma(a, 0, 1, AbsoluteChange)
	if g != 8 || eff != Decrease {
		t.Errorf("γ(a) = (%g,%v), want (8,-)", g, eff)
	}
}

func TestGammaAvgAggregate(t *testing.T) {
	// AVG is decomposable but not linear, so exercise the sum/count path.
	b := relation.NewBuilder("x", "d", []string{"s"}, []string{"m"})
	_ = b.Append("1", []string{"a"}, []float64{10})
	_ = b.Append("1", []string{"b"}, []float64{20})
	_ = b.Append("2", []string{"a"}, []float64{40})
	_ = b.Append("2", []string{"b"}, []float64{20})
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u := newUniverse(t, r, Config{Measure: "m", Agg: relation.Avg})
	a := lookup(t, u, r, map[string]string{"s": "a"})
	// AVG goes 15 -> 30 (+15). Removing slice a leaves AVG 20 -> 20 (0),
	// so γ(a) = 15 and the effect is an increase.
	g, eff := u.Gamma(a, 0, 1, AbsoluteChange)
	if math.Abs(g-15) > 1e-9 || eff != Increase {
		t.Errorf("γ(a) under AVG = (%g,%v), want (15,+)", g, eff)
	}
}

func TestRelativeChangeMetric(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}})
	ny := lookup(t, u, r, map[string]string{"state": "NY"})
	// Over [d1,d2] the overall change is +115, NY's share 100/115.
	g, eff := u.Gamma(ny, 0, 1, RelativeChange)
	if math.Abs(g-100.0/115.0) > 1e-9 || eff != Increase {
		t.Errorf("relative γ(NY) = (%g,%v), want (%g,+)", g, eff, 100.0/115.0)
	}
}

func TestRiskRatioMetric(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}})
	ca := lookup(t, u, r, map[string]string{"state": "CA"})
	// CA's share grows from d2 (5/115) to d4 (200/340): ratio > 1.
	g, _ := u.Gamma(ca, 1, 3, RiskRatio)
	if g <= 1 {
		t.Errorf("risk ratio γ(CA) = %g, want > 1", g)
	}
	// Risk ratio is symmetric around 1 (always folded to ≥ 1).
	g2, _ := u.Gamma(ca, 3, 1, RiskRatio)
	if g2 < 1 {
		t.Errorf("folded risk ratio = %g, want ≥ 1", g2)
	}
}

func TestMetricStringParse(t *testing.T) {
	for _, m := range []Metric{AbsoluteChange, RelativeChange, RiskRatio} {
		back, err := ParseMetric(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v: (%v, %v)", m, back, err)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Error("ParseMetric(bogus): want error")
	}
}

func TestEffectString(t *testing.T) {
	if Increase.String() != "+" || Decrease.String() != "-" || Neutral.String() != "0" {
		t.Errorf("Effect strings = %q %q %q", Increase, Decrease, Neutral)
	}
}

func TestFilterLowSupport(t *testing.T) {
	b := relation.NewBuilder("x", "d", []string{"s"}, []string{"m"})
	for _, day := range []string{"1", "2", "3"} {
		_ = b.Append(day, []string{"big"}, []float64{1000})
		_ = b.Append(day, []string{"tiny"}, []float64{0.1})
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	u := newUniverse(t, r, Config{Measure: "m", Agg: relation.Sum})
	all := u.AllCandidateIDs()
	if len(all) != 2 {
		t.Fatalf("AllCandidateIDs = %d, want 2", len(all))
	}
	kept := u.FilterLowSupport(0.001)
	if len(kept) != 1 {
		t.Fatalf("filtered = %d candidates, want 1", len(kept))
	}
	if got := u.Describe(kept[0]); got != "s=big" {
		t.Errorf("survivor = %q, want s=big", got)
	}
	// ratio 0 keeps everything.
	if got := u.FilterLowSupport(0); len(got) != 2 {
		t.Errorf("ratio 0 kept %d, want 2", len(got))
	}
}

// Property: for SUM, the γ of all order-1 candidates along one attribute
// decomposes the overall change: Σ_E signed-γ(E) = overall Δ.
func TestGammaDecompositionProperty(t *testing.T) {
	r := buildCovidMini(t)
	u := newUniverse(t, r, Config{Measure: "cases", Agg: relation.Sum, ExplainBy: []string{"state"}})
	tot := u.TotalValues()
	for c := 0; c < len(tot); c++ {
		for tt := c + 1; tt < len(tot); tt++ {
			var signed float64
			for id := 0; id < u.NumCandidates(); id++ {
				g, eff := u.Gamma(id, c, tt, AbsoluteChange)
				signed += g * float64(eff)
			}
			want := tot[tt] - tot[c]
			if math.Abs(signed-want) > 1e-9 {
				t.Errorf("segment [%d,%d]: Σ signed γ = %g, want %g", c, tt, signed, want)
			}
		}
	}
}

func lookup(t *testing.T, u *Universe, r *relation.Relation, pairs map[string]string) int {
	t.Helper()
	conj, err := relation.NewConjunction(r, pairs)
	if err != nil {
		t.Fatalf("NewConjunction(%v): %v", pairs, err)
	}
	id, ok := u.Lookup(conj)
	if !ok {
		t.Fatalf("Lookup(%v): not a candidate", pairs)
	}
	return id
}
