package explain

import (
	"math"
	"sort"

	"repro/internal/relation"
)

// This file implements subtree bound-pruning over the taxonomy-shaped
// candidate DAG: the hierarchy-aware replacement for the flat
// ContributionBounds + SelectTopBounds ranking. The flat path scores all
// ε candidates; here a best-first walk descends the drill-down DAG and
// prunes whole subtrees by a per-candidate cap that dominates every
// descendant's exact bound, so a 50k-leaf taxonomy whose mass sits in a
// few subtrees scores only the candidates near the top.
//
// Soundness rests on slice containment: along both extension edges
// (adding a predicate) and taxonomy edges (refining a level), the child's
// slice is a subset of the parent's. For COUNT always — and for SUM when
// every measure value is non-negative — the per-timestamp effect
// φ_E(t) = f(tot_t) − f(tot_t − e_t) is then pointwise non-negative and
// monotone non-increasing down every edge (smoothing, a non-negative
// moving average, preserves both). Hence
//
//	cap(E) = max_t φ_E(t)
//
// dominates the exact bound max φ − min φ of E and of every DAG
// descendant of E. Aggregates without that property (AVG, or SUM over
// signed measures) return a nil selector and the engine falls back to the
// flat ranking.

// SubtreeBounds is the taxonomy-aware top-M candidate selector. Exact
// bounds and caps are memoized per candidate, so the anytime refinement
// loop's growing budgets re-scan only newly visited candidates. Not safe
// for concurrent use; the owning engine serializes access like every
// other per-engine cache.
type SubtreeBounds struct {
	u    *Universe
	fTot []float64 // f(total) per timestamp

	computed []bool    // bounds/caps valid for this candidate
	bounds   []float64 // exact φ-range bound (ContributionBounds formula)
	caps     []float64 // max_t φ — the subtree dominator

	seen  []uint32 // per-walk frontier dedup, epoch-stamped
	epoch uint32

	// Visited counts candidates whose series were scanned across all
	// SelectTop calls — the work the walk did, reported for benchmarks.
	Visited int
}

// NewSubtreeBounds returns a selector for u, or nil when the universe has
// no multi-level taxonomy or the workload is not prunable (the cap is
// sound only for COUNT, or SUM over a non-negative measure).
func NewSubtreeBounds(u *Universe) *SubtreeBounds {
	if !u.HasTaxonomy() {
		return nil
	}
	switch u.agg {
	case relation.Count:
	case relation.Sum:
		r := u.rel
		for row := 0; row < r.NumRows(); row++ {
			v := r.MeasureValue(u.measure, row)
			if v < 0 || math.IsNaN(v) {
				return nil
			}
		}
	default:
		return nil
	}
	n := len(u.total)
	sb := &SubtreeBounds{
		u:        u,
		fTot:     make([]float64, n),
		computed: make([]bool, len(u.cands)),
		bounds:   make([]float64, len(u.cands)),
		caps:     make([]float64, len(u.cands)),
		seen:     make([]uint32, len(u.cands)),
	}
	for t, sc := range u.total {
		sb.fTot[t] = u.agg.Eval(sc.Sum, sc.Count)
	}
	return sb
}

// visit computes (memoized) candidate id's exact bound and cap with one
// scan of its series — the same φ-range formula ContributionBounds uses,
// against the same active series views.
//
//tsexplain:hotpath
func (sb *SubtreeBounds) visit(id int) {
	if sb.computed[id] {
		return
	}
	u := sb.u
	mn, mx := math.Inf(1), math.Inf(-1)
	for t, e := range u.cands[id].Series {
		rem := u.total[t].Sub(e)
		phi := sb.fTot[t] - u.agg.Eval(rem.Sum, rem.Count)
		if phi < mn {
			mn = phi
		}
		if phi > mx {
			mx = phi
		}
	}
	sb.bounds[id] = mx - mn
	sb.caps[id] = mx
	sb.computed[id] = true
	sb.Visited++
}

// pushChildren pushes id's unseen DAG children onto the frontier with
// estimate est (id's cap — an upper bound on every descendant's exact
// bound). Descent follows only taxonomy-respecting edges: a dimension at
// kept level k ≥ 1 is entered only when the node already holds the
// level-(k−1) predicate of the same hierarchy, so deep levels are reached
// through their roll-up chain and never by the flat extension shortcut
// that would bypass the caps. Every candidate stays reachable — the
// shortcut's targets are exactly the tax children of the chain.
//
//tsexplain:hotpath
func (sb *SubtreeBounds) pushChildren(fr *boundHeap, id int, est float64) {
	u := sb.u
	var conj relation.Conjunction
	if id >= 0 {
		conj = u.cands[id].Conj
	}
	for p, d := range u.explainBy {
		if hi := u.hierOf[p]; hi >= 0 && u.hierLevel[p] > 0 {
			prev := u.hier[hi].dims[u.hierLevel[p]-1]
			has := false
			for _, pr := range conj {
				if pr.Dim == prev {
					has = true
					break
				}
			}
			if !has {
				continue
			}
		}
		for _, kid := range u.ChildrenOf(id, d) {
			if sb.seen[kid] == sb.epoch {
				continue
			}
			sb.seen[kid] = sb.epoch
			fr.push(est, int32(kid))
		}
	}
}

// SelectTop picks the ids of the (at most max) candidates with the
// largest exact bounds among the eligible set (allowed nil means every
// candidate), like SelectTopBounds, but via the pruned best-first walk.
// It returns the kept ids ascending and theta, a sound upper bound on the
// exact bound of every eligible candidate NOT kept: the maximum of the
// dropped visited bounds, the caps of pruned subtrees, and the frontier
// estimate at early stop — each of which dominates its unvisited share.
func (sb *SubtreeBounds) SelectTop(allowed []bool, max int) (ids []int, theta float64) {
	if max < 0 {
		max = 0
	}
	sb.epoch++
	var fr boundHeap
	sb.pushChildren(&fr, -1, math.Inf(1))

	var kept keptHeap
	dropMax, prunedMax, stopEst := 0.0, 0.0, 0.0
	for len(fr) > 0 {
		est, id := fr.pop()
		if len(kept) == max && est <= kept.minBound() {
			// Everything still enqueued (and its descendants) is bounded
			// by est ≤ the worst kept bound; the kept set is final.
			stopEst = est
			break
		}
		sb.visit(int(id))
		b, cp := sb.bounds[id], sb.caps[id]
		if allowed == nil || allowed[id] {
			if len(kept) < max {
				kept.push(b, id)
			} else if max > 0 && (b > kept[0].est || (b == kept[0].est && id < kept[0].id)) {
				dropped := kept.replaceMin(b, id)
				if dropped > dropMax {
					dropMax = dropped
				}
			} else if b > dropMax {
				dropMax = b
			}
		}
		if len(kept) == max && cp <= kept.minBound() {
			// No descendant's exact bound can beat the kept set: the whole
			// subtree below id stays unscored.
			if cp > prunedMax {
				prunedMax = cp
			}
			continue
		}
		sb.pushChildren(&fr, int(id), cp)
	}
	theta = dropMax
	if prunedMax > theta {
		theta = prunedMax
	}
	if stopEst > theta {
		theta = stopEst
	}
	ids = make([]int, len(kept))
	for i, e := range kept {
		ids[i] = int(e.id)
	}
	sort.Ints(ids)
	return ids, theta
}

// boundEntry is one heap element: a candidate id with a float key.
type boundEntry struct {
	est float64
	id  int32
}

// boundHeap is a hand-rolled max-heap of (est desc, id asc) — the
// frontier ordering of the best-first walk. container/heap's interface
// would box every element and close over the slice; the walk is a hot
// path, so the sift loops are written out.
type boundHeap []boundEntry

// frontBefore orders the frontier: larger estimate first, smaller id on
// ties, so pops are deterministic.
func frontBefore(a, b boundEntry) bool {
	if a.est != b.est {
		return a.est > b.est
	}
	return a.id < b.id
}

//tsexplain:hotpath
func (h *boundHeap) push(est float64, id int32) {
	*h = append(*h, boundEntry{est: est, id: id})
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !frontBefore(s[i], s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

//tsexplain:hotpath
func (h *boundHeap) pop() (est float64, id int32) {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && frontBefore(s[l], s[best]) {
			best = l
		}
		if r < len(s) && frontBefore(s[r], s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return top.est, top.id
}

// keptHeap is a hand-rolled min-heap over (bound asc, id desc): the root
// is the replacement victim — the smallest kept bound, largest id on
// ties, matching SelectTopBounds' descending-bound/ascending-id ranking.
type keptHeap []boundEntry

// keptBefore orders the kept heap: smaller bound first, larger id on
// ties.
func keptBefore(a, b boundEntry) bool {
	if a.est != b.est {
		return a.est < b.est
	}
	return a.id > b.id
}

// minBound is the smallest kept bound, −Inf when nothing is kept (so a
// zero budget never prunes or stops on an empty set).
//
//tsexplain:hotpath
func (h keptHeap) minBound() float64 {
	if len(h) == 0 {
		return math.Inf(-1)
	}
	return h[0].est
}

//tsexplain:hotpath
func (h *keptHeap) push(bound float64, id int32) {
	*h = append(*h, boundEntry{est: bound, id: id})
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !keptBefore(s[i], s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// replaceMin swaps the root for the new entry and returns the evicted
// bound.
//
//tsexplain:hotpath
func (h *keptHeap) replaceMin(bound float64, id int32) float64 {
	s := *h
	dropped := s[0].est
	s[0] = boundEntry{est: bound, id: id}
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(s) && keptBefore(s[l], s[best]) {
			best = l
		}
		if r < len(s) && keptBefore(s[r], s[best]) {
			best = r
		}
		if best == i {
			break
		}
		s[i], s[best] = s[best], s[i]
		i = best
	}
	return dropped
}
