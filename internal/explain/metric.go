package explain

import (
	"fmt"
	"math"

	"repro/internal/relation"
)

// Metric identifies a difference metric γ(E) from the diff-operator
// abstraction (Section 3.1.1). The paper's experiments all use
// AbsoluteChange; RelativeChange and RiskRatio implement the "extending
// the difference metric library" direction listed in the conclusion.
type Metric int

const (
	// AbsoluteChange is Definition 3.2: the absolute change in
	// f(M,R_t) − f(M,R_c) caused by removing the records E selects.
	AbsoluteChange Metric = iota
	// RelativeChange normalizes the absolute change by the magnitude of
	// the overall change, scoring slices by the fraction of the KPI move
	// they account for.
	RelativeChange
	// RiskRatio compares the slice's share of the aggregate in the test
	// relation against its share in the control relation, in the style of
	// MacroBase's risk ratio; values far from 1 indicate slices whose
	// weight shifted.
	RiskRatio
)

// String returns the metric's name.
func (m Metric) String() string {
	switch m {
	case AbsoluteChange:
		return "absolute-change"
	case RelativeChange:
		return "relative-change"
	case RiskRatio:
		return "risk-ratio"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// ParseMetric parses a metric name as produced by String.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "absolute-change":
		return AbsoluteChange, nil
	case "relative-change":
		return RelativeChange, nil
	case "risk-ratio":
		return RiskRatio, nil
	default:
		return 0, fmt.Errorf("explain: unknown metric %q", s)
	}
}

// Effect is the change effect τ(E) of Definition 3.3.
type Effect int8

const (
	// Decrease means including E's records decreases the overall change.
	Decrease Effect = -1
	// Neutral means E's records do not move the overall change.
	Neutral Effect = 0
	// Increase means including E's records increases the overall change.
	Increase Effect = 1
)

// String renders the effect as the paper's +/- notation.
func (e Effect) String() string {
	switch {
	case e > 0:
		return "+"
	case e < 0:
		return "-"
	default:
		return "0"
	}
}

// Score computes γ(E) under metric m together with the change effect
// τ(E), given the decomposed aggregate state of the whole relation and of
// the slice σ_E R at the control (c) and test (t) endpoints.
//
// For any decomposable aggregate f, the overall difference is
// f(tot_t) − f(tot_c) and removing E's records yields
// f(tot_t − e_t) − f(tot_c − e_c); γ and τ follow Definitions 3.2–3.3.
func (m Metric) Score(f relation.AggFunc, totC, totT, eC, eT relation.SumCount) (gamma float64, effect Effect) {
	base := f.Eval(totT.Sum, totT.Count) - f.Eval(totC.Sum, totC.Count)
	remT := totT.Sub(eT)
	remC := totC.Sub(eC)
	removed := f.Eval(remT.Sum, remT.Count) - f.Eval(remC.Sum, remC.Count)
	delta := base - removed
	switch {
	case delta > 0:
		effect = Increase
	case delta < 0:
		effect = Decrease
	}

	switch m {
	case AbsoluteChange:
		gamma = math.Abs(delta)
	case RelativeChange:
		denom := math.Abs(base)
		if denom == 0 {
			gamma = math.Abs(delta)
		} else {
			gamma = math.Abs(delta) / denom
		}
	case RiskRatio:
		shareT := share(f, totT, eT)
		shareC := share(f, totC, eC)
		const eps = 1e-12
		ratio := (shareT + eps) / (shareC + eps)
		if ratio < 1 && ratio > 0 {
			ratio = 1 / ratio
		}
		gamma = ratio
	default:
		panic("explain: invalid Metric")
	}
	return gamma, effect
}

// share returns |f(σ_E R)| / |f(R)| at one endpoint, clamped to 0 when the
// overall aggregate vanishes.
func share(f relation.AggFunc, tot, e relation.SumCount) float64 {
	overall := math.Abs(f.Eval(tot.Sum, tot.Count))
	if overall == 0 {
		return 0
	}
	return math.Abs(f.Eval(e.Sum, e.Count)) / overall
}

// Gamma scores candidate id over the segment [c, t] (point positions into
// the aggregated series) under metric m. It is the O(1) per-lookup scoring
// the precompute module enables.
func (u *Universe) Gamma(id, c, t int, m Metric) (gamma float64, effect Effect) {
	cand := u.cands[id]
	return m.Score(u.agg, u.total[c], u.total[t], cand.Series[c], cand.Series[t])
}
