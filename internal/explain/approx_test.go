package explain

import (
	"math"
	"testing"

	"repro/internal/relation"
	"repro/internal/synth"
)

func buildTestUniverse(t *testing.T, agg relation.AggFunc) *Universe {
	t.Helper()
	d, err := synth.Generate(synth.Params{N: 60, Categories: 4, Seed: 11, SNRdB: 30})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	u, err := NewUniverse(d.Rel, Config{Measure: "sales", Agg: agg})
	if err != nil {
		t.Fatalf("universe: %v", err)
	}
	return u
}

// TestContributionBoundDominatesGamma is the soundness property the whole
// approximate error bound rests on: the per-candidate bound dominates the
// absolute-change score over every segment.
func TestContributionBoundDominatesGamma(t *testing.T) {
	for _, agg := range []relation.AggFunc{relation.Sum, relation.Count, relation.Avg} {
		u := buildTestUniverse(t, agg)
		bounds := u.ContributionBounds()
		n := u.NumTimestamps()
		for id := 0; id < u.NumCandidates(); id++ {
			for c := 0; c < n; c++ {
				for tt := c + 1; tt < n; tt += 7 {
					g, _ := u.Gamma(id, c, tt, AbsoluteChange)
					if g > bounds[id]+1e-9 {
						t.Fatalf("agg %v candidate %d segment [%d,%d]: γ=%g exceeds bound %g",
							agg, id, c, tt, g, bounds[id])
					}
				}
			}
		}
	}
}

func TestSelectTopBounds(t *testing.T) {
	bounds := []float64{5, 1, 9, 3, 9, 0.5}
	ids, theta := SelectTopBounds(bounds, nil, 3)
	if want := []int{0, 2, 4}; len(ids) != 3 || ids[0] != want[0] || ids[1] != want[1] || ids[2] != want[2] {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	if theta != 3 {
		t.Fatalf("theta = %g, want 3", theta)
	}

	// Ties break by ascending id: both 9s kept before the 5.
	ids, theta = SelectTopBounds(bounds, nil, 2)
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 4 {
		t.Fatalf("ids = %v, want [2 4]", ids)
	}
	if theta != 5 {
		t.Fatalf("theta = %g, want 5", theta)
	}

	// The allowed bitmap excludes candidates from both selection and theta.
	allowed := []bool{true, true, false, true, false, true}
	ids, theta = SelectTopBounds(bounds, allowed, 2)
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 3 {
		t.Fatalf("ids = %v, want [0 3]", ids)
	}
	if theta != 1 {
		t.Fatalf("theta = %g, want 1", theta)
	}

	// Nothing pruned: theta is 0 and every eligible id comes back sorted.
	ids, theta = SelectTopBounds(bounds, nil, 100)
	if len(ids) != len(bounds) || theta != 0 {
		t.Fatalf("ids = %v theta = %g, want all ids and theta 0", ids, theta)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("ids not ascending: %v", ids)
		}
	}
}

// TestResidualSeriesExact: the residual of a non-overlapping explanation
// set plus the explanations' own series reproduces the overall series
// exactly, per decomposed component.
func TestResidualSeriesExact(t *testing.T) {
	u := buildTestUniverse(t, relation.Sum)
	// Pick the order-1 candidates of dimension 0: sibling slices, disjoint
	// by construction.
	var ids []int
	for id := 0; id < u.NumCandidates(); id++ {
		c := u.Candidate(id).Conj
		if c.Order() == 1 && c[0].Dim == u.ExplainBy()[0] {
			ids = append(ids, id)
			if len(ids) == 2 {
				break
			}
		}
	}
	if len(ids) < 2 {
		t.Fatal("expected at least two order-1 candidates")
	}
	res := u.ResidualSeries(ids)
	tot := u.TotalSeries()
	for tt := range tot {
		sum := res[tt]
		for _, id := range ids {
			s := u.Candidate(id).Series[tt]
			sum.Sum += s.Sum
			sum.Count += s.Count
		}
		if math.Abs(sum.Sum-tot[tt].Sum) > 1e-9*(1+math.Abs(tot[tt].Sum)) ||
			math.Abs(sum.Count-tot[tt].Count) > 1e-9*(1+math.Abs(tot[tt].Count)) {
			t.Fatalf("t=%d: residual+selected = %+v, total %+v", tt, sum, tot[tt])
		}
	}
}
