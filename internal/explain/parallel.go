package explain

import (
	"sync"
	"sync/atomic"
)

// runIndexed runs fn(i) for every i in [0, n) across at most workers
// goroutines, pulling indexes from a shared atomic counter so expensive
// items (high-order subsets dominate enumeration cost) balance across
// cores. workers ≤ 1 runs inline. fn must write only to per-index state;
// the results are then identical regardless of the worker count, which is
// what keeps parallel universe construction deterministic.
func runIndexed(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
