package explain

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

// streamRows generates a small two-dimensional workload whose delta
// introduces a brand-new value on each dimension.
func streamRows(days int) (timeVals []string, dims [][]string, measures [][]float64) {
	for day := 0; day < days; day++ {
		label := fmt.Sprintf("d%03d", day)
		for _, a := range []string{"x", "y"} {
			timeVals = append(timeVals, label)
			dims = append(dims, []string{a, fmt.Sprintf("g%d", day%2)})
			measures = append(measures, []float64{float64(day*7 + len(a)*3)})
		}
		if day >= 8 {
			// z (and its pairing with the new group g9) only exists late.
			timeVals = append(timeVals, label)
			dims = append(dims, []string{"z", "g9"})
			measures = append(measures, []float64{float64(100 + day)})
		}
	}
	return
}

func buildStream(t *testing.T, timeVals []string, dims [][]string, measures [][]float64) *relation.Relation {
	t.Helper()
	b := relation.NewBuilder("s", "day", []string{"a", "g"}, []string{"v"})
	for i := range timeVals {
		if err := b.Append(timeVals[i], dims[i], measures[i]); err != nil {
			t.Fatal(err)
		}
	}
	r, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// sameUniverse checks the streamed universe against a fresh build over
// the same relation: identical candidate sets (matched by conjunction),
// bit-identical series and totals, and equivalent drill-down adjacency.
func sameUniverse(t *testing.T, ctx string, got, want *Universe) {
	t.Helper()
	if got.NumCandidates() != want.NumCandidates() {
		t.Fatalf("%s: %d candidates, want %d", ctx, got.NumCandidates(), want.NumCandidates())
	}
	if got.NumTimestamps() != want.NumTimestamps() {
		t.Fatalf("%s: %d timestamps, want %d", ctx, got.NumTimestamps(), want.NumTimestamps())
	}
	gt, wt := got.TotalValues(), want.TotalValues()
	for i := range wt {
		if gt[i] != wt[i] {
			t.Fatalf("%s: total[%d] = %v, want %v", ctx, i, gt[i], wt[i])
		}
	}
	rel := want.Relation()
	for id := 0; id < want.NumCandidates(); id++ {
		wc := want.Candidate(id)
		gid, ok := got.Lookup(wc.Conj)
		if !ok {
			t.Fatalf("%s: candidate %s missing", ctx, wc.Conj.String(rel))
		}
		gv, wv := got.CandidateValues(gid), want.CandidateValues(id)
		for i := range wv {
			if gv[i] != wv[i] {
				t.Fatalf("%s: %s value[%d] = %v, want %v", ctx, wc.Conj.String(rel), i, gv[i], wv[i])
			}
		}
		// Ancestor sets must agree through the conjunction mapping.
		wantAnc := map[string]bool{}
		for _, aid := range want.AncestorsOf(id) {
			wantAnc[want.Candidate(int(aid)).Conj.Key()] = true
		}
		gotAnc := map[string]bool{}
		for _, aid := range got.AncestorsOf(gid) {
			gotAnc[got.Candidate(int(aid)).Conj.Key()] = true
		}
		if len(gotAnc) != len(wantAnc) {
			t.Fatalf("%s: %s ancestors %v, want %v", ctx, wc.Conj.String(rel), gotAnc, wantAnc)
		}
		for k := range wantAnc {
			if !gotAnc[k] {
				t.Fatalf("%s: %s missing ancestor %s", ctx, wc.Conj.String(rel), k)
			}
		}
	}
	// Root drill-down per dimension must expose the same child slices.
	for _, dim := range want.ExplainBy() {
		wantKids := map[string]bool{}
		for _, id := range want.ChildrenOf(-1, dim) {
			wantKids[want.Candidate(int(id)).Conj.Key()] = true
		}
		gotKids := map[string]bool{}
		for _, id := range got.ChildrenOf(-1, dim) {
			gotKids[got.Candidate(int(id)).Conj.Key()] = true
		}
		if len(gotKids) != len(wantKids) {
			t.Fatalf("%s: root children over dim %d = %v, want %v", ctx, dim, gotKids, wantKids)
		}
		for k := range wantKids {
			if !gotKids[k] {
				t.Fatalf("%s: root missing child %s over dim %d", ctx, k, dim)
			}
		}
	}
}

func universeConfig() Config {
	return Config{Measure: "v", Agg: relation.Sum, MaxOrder: 2, Streaming: true}
}

func TestUniverseAppendMatchesFresh(t *testing.T) {
	for _, smooth := range []int{0, 5} {
		t.Run(fmt.Sprintf("smooth=%d", smooth), func(t *testing.T) {
			timeVals, dims, measures := streamRows(12)

			// Stream: start with 6 days, then append the rest in three
			// uneven batches (one of which introduces z/g9).
			cut := func(day int) int {
				for i, tv := range timeVals {
					if tv >= fmt.Sprintf("d%03d", day) {
						return i
					}
				}
				return len(timeVals)
			}
			streamed := buildStream(t, timeVals[:cut(6)], dims[:cut(6)], measures[:cut(6)])
			u, err := NewUniverse(streamed, universeConfig())
			if err != nil {
				t.Fatal(err)
			}
			if smooth > 1 {
				u.Smooth(smooth)
			}

			// Existing candidate IDs must survive every append untouched.
			idOf := map[string]int{}
			for id := 0; id < u.NumCandidates(); id++ {
				idOf[u.Candidate(id).Conj.Key()] = id
			}

			for _, to := range []int{8, 10, 12} {
				from := cut(to - 2)
				hi := cut(to)
				if err := streamed.AppendRows(timeVals[from:hi], dims[from:hi], measures[from:hi]); err != nil {
					t.Fatal(err)
				}
				info, err := u.Append()
				if err != nil {
					t.Fatal(err)
				}
				if info.NewTimestamps != streamed.NumTimestamps() {
					t.Fatalf("info.NewTimestamps = %d, want %d", info.NewTimestamps, streamed.NumTimestamps())
				}
				for key, id := range idOf {
					if u.Candidate(id).Conj.Key() != key {
						t.Fatalf("after append to day %d: candidate %d changed conjunction", to, id)
					}
				}
				for id := 0; id < u.NumCandidates(); id++ {
					idOf[u.Candidate(id).Conj.Key()] = id
				}

				fullPrefix := buildStream(t, timeVals[:hi], dims[:hi], measures[:hi])
				fresh, err := NewUniverse(fullPrefix, universeConfig())
				if err != nil {
					t.Fatal(err)
				}
				if smooth > 1 {
					fresh.Smooth(smooth)
				}
				sameUniverse(t, fmt.Sprintf("day %d", to), u, fresh)
			}
		})
	}
}

func TestUniverseAppendRequiresStreaming(t *testing.T) {
	timeVals, dims, measures := streamRows(4)
	rel := buildStream(t, timeVals, dims, measures)
	u, err := NewUniverse(rel, Config{Measure: "v", Agg: relation.Sum, MaxOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Append(); err == nil {
		t.Error("Append on a non-streaming universe: want error")
	}
}
