package explain_test

// Parallel universe construction must be bit-for-bit deterministic: the
// candidate IDs, conjunctions, series, children adjacency, and ancestor
// closures coming out of NewUniverse may not depend on the worker count
// or on goroutine scheduling.

import (
	"testing"

	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/synth"
)

func TestNewUniverseParallelDeterminism(t *testing.T) {
	d, err := synth.Generate(synth.Params{Seed: 7, SNRdB: 30, N: 150, Categories: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := explain.Config{Measure: "sales", Agg: relation.Sum, MaxOrder: 3}
	serial, err := explain.NewUniverse(d.Rel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg.Parallelism = workers
		// Repeat to give racy schedules a chance to differ.
		for trial := 0; trial < 3; trial++ {
			par, err := explain.NewUniverse(d.Rel, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertUniversesIdentical(t, serial, par, workers)
		}
	}
}

func assertUniversesIdentical(t *testing.T, a, b *explain.Universe, workers int) {
	t.Helper()
	if a.NumCandidates() != b.NumCandidates() {
		t.Fatalf("workers=%d: %d candidates, serial %d", workers, b.NumCandidates(), a.NumCandidates())
	}
	if a.NumTimestamps() != b.NumTimestamps() {
		t.Fatalf("workers=%d: timestamp counts differ", workers)
	}
	for id := 0; id < a.NumCandidates(); id++ {
		ca, cb := a.Candidate(id), b.Candidate(id)
		if ca.Conj.Key() != cb.Conj.Key() {
			t.Fatalf("workers=%d candidate %d: conj %q, serial %q",
				workers, id, cb.Conj.Key(), ca.Conj.Key())
		}
		for tt := range ca.Series {
			if ca.Series[tt] != cb.Series[tt] {
				t.Fatalf("workers=%d candidate %d t=%d: series %+v, serial %+v",
					workers, id, tt, cb.Series[tt], ca.Series[tt])
			}
		}
		for _, dim := range a.ExplainBy() {
			ka := a.ChildrenOf(id, dim)
			kb := b.ChildrenOf(id, dim)
			if len(ka) != len(kb) {
				t.Fatalf("workers=%d node %d dim %d: %d children, serial %d",
					workers, id, dim, len(kb), len(ka))
			}
			for i := range ka {
				if ka[i] != kb[i] {
					t.Fatalf("workers=%d node %d dim %d child %d: %d, serial %d",
						workers, id, dim, i, kb[i], ka[i])
				}
			}
		}
		aa, ab := a.AncestorsOf(id), b.AncestorsOf(id)
		if len(aa) != len(ab) {
			t.Fatalf("workers=%d candidate %d: ancestor counts differ", workers, id)
		}
		for i := range aa {
			if aa[i] != ab[i] {
				t.Fatalf("workers=%d candidate %d ancestor %d: %d, serial %d",
					workers, id, i, ab[i], aa[i])
			}
		}
	}
	// Root adjacency too.
	for _, dim := range a.ExplainBy() {
		ka, kb := a.ChildrenOf(-1, dim), b.ChildrenOf(-1, dim)
		if len(ka) != len(kb) {
			t.Fatalf("workers=%d root dim %d: child counts differ", workers, dim)
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("workers=%d root dim %d child %d differs", workers, dim, i)
			}
		}
	}
}
