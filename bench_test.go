package tsexplain_test

// Benchmark harness: one benchmark per paper table and figure (see
// DESIGN.md's per-experiment index), plus the ablation benches DESIGN.md
// calls out and micro-benchmarks for the engine's hot paths. The full
// paper-scale runs live in cmd/experiments; these benchmarks use reduced
// workloads so `go test -bench=.` finishes in minutes while still
// exercising every experiment code path.

import (
	"io"
	"testing"

	tsexplain "repro"
	"repro/internal/baseline"
	"repro/internal/cascading"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/evalmetrics"
	"repro/internal/experiments"
	"repro/internal/explain"
	"repro/internal/relation"
	"repro/internal/segment"
	"repro/internal/synth"
)

// benchCfg trims the sweeps so one benchmark iteration stays in seconds.
var benchCfg = experiments.Config{Samples: 300, Datasets: 3, Quick: true}

func runDatasetBench(b *testing.B, d *datasets.Dataset, optimized bool) {
	b.Helper()
	var opts core.Options
	if optimized {
		opts = core.DefaultOptions()
	}
	opts.MaxOrder = d.MaxOrder
	opts.SmoothWindow = d.SmoothWindow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := core.NewEngine(d.Rel, core.Query{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy,
		}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Explain(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per table/figure ---

func BenchmarkFig4SynthCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig4(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6MetricRanking(b *testing.B) {
	cfg := experiments.Config{Samples: 100, Datasets: 2}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10SyntheticAccuracy(b *testing.B) {
	cfg := experiments.Config{Datasets: 2}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11CovidTotal(b *testing.B)  { runDatasetBench(b, datasets.CovidTotal(), true) }
func BenchmarkFig12CovidDaily(b *testing.B)  { runDatasetBench(b, datasets.CovidDaily(), true) }
func BenchmarkFig13SP500(b *testing.B)       { runDatasetBench(b, datasets.SP500(), true) }
func BenchmarkFig14Liquor(b *testing.B)      { runDatasetBench(b, datasets.Liquor(), true) }
func BenchmarkFig18TimeVarying(b *testing.B) { runDatasetBench(b, datasets.VaxDeaths(), true) }

func BenchmarkTable6DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table6(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Optimizations runs the five optimization variants on the
// covid total series (the full four-dataset breakdown is
// `cmd/experiments -run fig15`).
func BenchmarkFig15Optimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7Quality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table7(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16(io.Discard, benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig17Scalability measures one mid-size point of the sweep for
// both engines (the full sweep is `cmd/experiments -run fig17`).
func BenchmarkFig17Scalability(b *testing.B) {
	d, err := synth.Generate(synth.Params{Seed: 3, SNRdB: 35, N: 800, MinSegLen: 50})
	if err != nil {
		b.Fatal(err)
	}
	q := core.Query{Measure: "sales", Agg: relation.Sum}
	b.Run("vanilla-n800", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, _ := core.NewEngine(d.Rel, q, core.Options{})
			if _, err := eng.Explain(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimized-n800", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, _ := core.NewEngine(d.Rel, q, core.DefaultOptions())
			if _, err := eng.Explain(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation benches (DESIGN.md's design-choice list) ---

func BenchmarkAblationRectification(b *testing.B) {
	cfg := experiments.Config{Samples: 300, Datasets: 2}
	for i := 0; i < b.N; i++ {
		if err := experiments.AblationRectification(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGuessInit(b *testing.B) {
	d := datasets.Liquor()
	q := core.Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}
	for _, init := range []int{8, 30, 120} {
		b.Run(benchName("init", init), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.MaxOrder = d.MaxOrder
				opts.SmoothWindow = d.SmoothWindow
				opts.GuessInit = init
				eng, err := core.NewEngine(d.Rel, q, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Explain(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSketchSize(b *testing.B) {
	d := datasets.CovidTotal()
	q := core.Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}
	n := d.Rel.NumTimestamps()
	for _, size := range []int{n / 10, 3 * n / 17, 6 * n / 17} {
		b.Run(benchName("S", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.MaxOrder = d.MaxOrder
				opts.Sketch = segment.SketchConfig{Size: size}
				eng, err := core.NewEngine(d.Rel, q, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Explain(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationFilterRatio(b *testing.B) {
	d := datasets.Liquor()
	q := core.Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}
	for _, ratio := range []float64{0.0001, 0.001, 0.01} {
		b.Run(benchName("ratio1e7x", int(ratio*1e7)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.MaxOrder = d.MaxOrder
				opts.SmoothWindow = d.SmoothWindow
				opts.FilterRatio = ratio
				eng, err := core.NewEngine(d.Rel, q, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Explain(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Micro-benchmarks for the hot paths ---

// BenchmarkPrecomputeLiquor measures the precompute module (candidate
// enumeration + series construction) on the liquor dataset — the
// columnar group-by kernel's home turf.
func BenchmarkPrecomputeLiquor(b *testing.B) {
	d := datasets.Liquor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explain.NewUniverse(d.Rel, explain.Config{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrecomputeLiquorParallel is the same build fanned across 4
// workers (identical output, see TestNewUniverseParallelDeterminism).
func BenchmarkPrecomputeLiquorParallel(b *testing.B) {
	d := datasets.Liquor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explain.NewUniverse(d.Rel, explain.Config{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
			Parallelism: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrecomputeKernel pits the columnar integer-keyed group-by
// kernel against the legacy string-keyed one on the liquor rows.
func BenchmarkPrecomputeKernel(b *testing.B) {
	d := datasets.Liquor()
	var dims []int
	for _, name := range d.ExplainBy {
		dims = append(dims, d.Rel.DimIndex(name))
	}
	if len(dims) > 3 {
		dims = dims[:3]
	}
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.Rel.GroupBySeriesColumnar(dims, d.Rel.MeasureIndex(d.Measure))
		}
	})
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.Rel.GroupBySeries(dims, d.Rel.MeasureIndex(d.Measure))
		}
	})
}

// BenchmarkLiquorEndToEnd runs the full optimized pipeline on liquor,
// the precompute-dominated end-to-end workload of Figure 15.
func BenchmarkLiquorEndToEnd(b *testing.B) {
	runDatasetBench(b, datasets.Liquor(), true)
}

func liquorUniverse(b *testing.B) *explain.Universe {
	b.Helper()
	d := datasets.Liquor()
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		b.Fatal(err)
	}
	return u
}

func BenchmarkUniverseBuildLiquor(b *testing.B) {
	d := datasets.Liquor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := explain.NewUniverse(d.Rel, explain.Config{
			Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCascadingSolveExact(b *testing.B) {
	u := liquorUniverse(b)
	s := cascading.NewSolver(u, explain.AbsoluteChange, 3)
	n := u.NumTimestamps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(i%(n/2), n/2+i%(n/2), nil)
	}
}

func BenchmarkCascadingGuessVerify(b *testing.B) {
	u := liquorUniverse(b)
	s := cascading.NewSolver(u, explain.AbsoluteChange, 3)
	allowed := make([]bool, u.NumCandidates())
	for _, id := range u.FilterLowSupport(0.001) {
		allowed[id] = true
	}
	n := u.NumTimestamps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.GuessVerify(i%(n/2), n/2+i%(n/2), 30, allowed)
	}
}

func BenchmarkGammaLookup(b *testing.B) {
	u := liquorUniverse(b)
	n := u.NumTimestamps()
	eps := u.NumCandidates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Gamma(i%eps, 0, n-1, explain.AbsoluteChange)
	}
}

func BenchmarkVarianceWeighted(b *testing.B) {
	d := datasets.CovidTotal()
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		b.Fatal(err)
	}
	exp := segment.NewExplainer(u, segment.ExplainerConfig{M: 3})
	n := u.NumTimestamps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh calculator each iteration so the cache does not absorb
		// the work being measured.
		vc := segment.NewVarCalc(exp, segment.Tse)
		vc.Weighted(0, n-1)
	}
}

func BenchmarkSegmentationDP(b *testing.B) {
	d := datasets.CovidTotal()
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		b.Fatal(err)
	}
	exp := segment.NewExplainer(u, segment.ExplainerConfig{M: 3})
	vc := segment.NewVarCalc(exp, segment.Tse)
	// Warm the caches so the bench isolates the DP itself.
	if _, err := segment.Optimize(vc, segment.Options{KMax: 20}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := segment.Optimize(vc, segment.Options{KMax: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVarCalcAllPair measures the AllPair variance design on the
// covid total series: the O(n²) pair-distance prefix build into the flat
// row-major table, and segment variance queries answered from the
// finished table (one rectangle sum, as the segmentation DP issues them).
func BenchmarkVarCalcAllPair(b *testing.B) {
	d := datasets.CovidTotal()
	u, err := explain.NewUniverse(d.Rel, explain.Config{
		Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy, MaxOrder: d.MaxOrder,
	})
	if err != nil {
		b.Fatal(err)
	}
	exp := segment.NewExplainer(u, segment.ExplainerConfig{M: 3})
	n := u.NumTimestamps()

	b.Run("prefix-build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// Fresh calculator each iteration so the prefix table is
			// rebuilt from scratch — the quantity being measured.
			vc := segment.NewVarCalc(exp, segment.AllPair)
			vc.Weighted(0, n-1)
		}
	})
	b.Run("segment-query", func(b *testing.B) {
		vc := segment.NewVarCalc(exp, segment.AllPair)
		vc.Weighted(0, n-1) // materialize the prefix table once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := (i * 31) % (n - 2)
			z := a + 2 + (i*17)%(n-a-2)
			vc.Weighted(a, z)
		}
	})
}

// BenchmarkGroupByFill isolates the two-pass group-by kernel on the
// liquor explain-by columns: pass 1 (PlanGroupBy) discovers the groups
// and records each row's slot, pass 2 (FillArena) scatters rows into a
// group-major arena with three indexed loads per row.
func BenchmarkGroupByFill(b *testing.B) {
	d := datasets.Liquor()
	var dims []int
	for _, name := range d.ExplainBy {
		dims = append(dims, d.Rel.DimIndex(name))
	}
	if len(dims) > 2 {
		dims = dims[:2]
	}
	m := d.Rel.MeasureIndex(d.Measure)
	T := d.Rel.NumTimestamps()
	groups := d.Rel.PlanGroupBy(dims, m).NumGroups()
	arena := make([]relation.SumCount, groups*T)

	b.Run("plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.Rel.PlanGroupBy(dims, m)
		}
	})
	b.Run("plan+fill", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clear(arena)
			d.Rel.PlanGroupBy(dims, m).FillArena(arena, T)
		}
	})
	b.Run("refill", func(b *testing.B) {
		// A held plan re-derives slots from its maps (the rowSlot record
		// is released after the first fill), exercising the packed-key
		// lookup path that later fills and streaming appends take.
		p := d.Rel.PlanGroupBy(dims, m)
		p.FillArena(arena, T)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(arena)
			p.FillArena(arena, T)
		}
	})
}

func BenchmarkBaselineBottomUp(b *testing.B) {
	vals := synthSeries(b, 1600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.BottomUp(vals, 6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineFLUSS(b *testing.B) {
	vals := synthSeries(b, 800)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.FLUSS(vals, 6, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselineNNSegment(b *testing.B) {
	vals := synthSeries(b, 1600)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.NNSegment(vals, 6, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistancePercent(b *testing.B) {
	got := []int{0, 25, 52, 77, 99}
	truth := []int{0, 24, 50, 80, 99}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evalmetrics.DistancePercent(got, truth, 100)
	}
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	d, err := synth.Generate(synth.Params{Seed: 9, SNRdB: 40, N: 400, MinSegLen: 25})
	if err != nil {
		b.Fatal(err)
	}
	q := tsexplain.Query{Measure: "sales", Agg: tsexplain.Sum}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc, _, err := tsexplain.NewIncremental(d.Rel, q, tsexplain.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inc.Update(d.Rel); err != nil {
			b.Fatal(err)
		}
	}
}

func synthSeries(b *testing.B, n int) []float64 {
	b.Helper()
	d, err := synth.Generate(synth.Params{Seed: 4, SNRdB: 35, N: n, MinSegLen: n / 16})
	if err != nil {
		b.Fatal(err)
	}
	return d.AggregateValues()
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "-0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "-" + string(buf[i:])
}
