// Quickstart: explain a small CSV with the public API.
//
// The data is a toy two-state epidemic: NY drives the first half of the
// rise, CA the second half. TSExplain segments the series and reports the
// evolving top contributors.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	tsexplain "repro"
)

func main() {
	var csv strings.Builder
	csv.WriteString("date,state,cases\n")
	for d := 0; d < 30; d++ {
		ny, ca := 1500, 10
		if d <= 15 {
			ny = 100 * d
			ca = 10
		} else {
			ca = 10 + 120*(d-15)
		}
		fmt.Fprintf(&csv, "2020-03-%02d,NY,%d\n", d+1, ny)
		fmt.Fprintf(&csv, "2020-03-%02d,CA,%d\n", d+1, ca)
	}

	rel, err := tsexplain.ReadCSV(strings.NewReader(csv.String()), tsexplain.CSVSpec{
		Name:     "quickstart",
		TimeCol:  "date",
		DimCols:  []string{"state"},
		MeasCols: []string{"cases"},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := tsexplain.Explain(rel, tsexplain.Query{
		Measure: "cases",
		Agg:     tsexplain.Sum,
	}, tsexplain.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TSExplain found %d periods:\n", res.K)
	for _, seg := range res.Segments {
		fmt.Printf("\n%s ~ %s\n", seg.StartLabel, seg.EndLabel)
		for i, e := range seg.Top {
			fmt.Printf("  top-%d: %s (%s, γ=%.0f)\n", i+1, e.Predicates, e.Effect, e.Gamma)
		}
	}
}
