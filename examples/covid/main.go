// Covid: the paper's headline case study (Figures 1, 2, 11). Explains the
// simulated US total-confirmed-cases series of 2020 by state, printing
// each period's top-3 contributing states with their per-segment
// trendlines, the Figure 2 visualization in text form.
//
// Run with: go run ./examples/covid
package main

import (
	"fmt"
	"log"
	"strings"

	tsexplain "repro"
	"repro/internal/datasets"
)

func main() {
	d := datasets.CovidTotal()

	opts := tsexplain.DefaultOptions()
	opts.MaxOrder = d.MaxOrder
	res, err := tsexplain.Explain(d.Rel, tsexplain.Query{
		Measure:   d.Measure,
		Agg:       d.Agg,
		ExplainBy: d.ExplainBy,
	}, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("US total confirmed cases 2020, explained by state (K=%d, %v end to end)\n",
		res.K, res.Timings.Total().Round(1e6))
	for _, seg := range res.Segments {
		total := res.Series[seg.End] - res.Series[seg.Start]
		fmt.Printf("\n%s ~ %s   national increase %+.3g\n", seg.StartLabel, seg.EndLabel, total)
		for i, e := range seg.Top {
			fmt.Printf("  top-%d %-22s %s γ=%.3g  %s\n",
				i+1, e.Predicates, e.Effect, e.Gamma, spark(e.Values))
		}
	}
}

// spark renders a small trendline for one explanation's sub-series.
func spark(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	width := 24
	if width > len(vals) {
		width = len(vals)
	}
	var sb strings.Builder
	for i := 0; i < width; i++ {
		v := vals[i*len(vals)/width]
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(levels)-1))
		}
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
