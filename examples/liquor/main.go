// Liquor: the multi-attribute case study (Figure 14, Table 5). Four
// explain-by attributes — Bottle Volume, Pack, Category Name, Vendor
// Name — and order-≤3 conjunctions; the engine surfaces the pandemic
// shift to large packs and the BV=1000 bar-channel collapse/recovery,
// while ignoring the uninteresting attributes.
//
// This example also demonstrates the optimization toggles: it runs
// VanillaTSExplain and the fully optimized engine and reports both
// latencies (Section 7.5's ~13× speed-up).
//
// Run with: go run ./examples/liquor
package main

import (
	"fmt"
	"log"

	tsexplain "repro"
	"repro/internal/datasets"
)

func main() {
	d := datasets.Liquor()
	query := tsexplain.Query{
		Measure:   d.Measure,
		Agg:       d.Agg,
		ExplainBy: d.ExplainBy,
	}

	optimized := tsexplain.DefaultOptions()
	optimized.MaxOrder = d.MaxOrder
	optimized.SmoothWindow = d.SmoothWindow
	res, err := tsexplain.Explain(d.Rel, query, optimized)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Iowa liquor bottles sold, 2020-01-02 .. 2020-06-30 (ε=%d candidates)\n",
		res.Stats.Epsilon)
	fmt.Printf("optimized engine: %v end to end\n\n", res.Timings.Total().Round(1e6))
	for _, seg := range res.Segments {
		fmt.Printf("%s ~ %s\n", seg.StartLabel, seg.EndLabel)
		for i, e := range seg.Top {
			fmt.Printf("  top-%d %-44s %s γ=%.3g\n", i+1, e.Predicates, e.Effect, e.Gamma)
		}
	}

	vanilla := tsexplain.Options{MaxOrder: d.MaxOrder, SmoothWindow: d.SmoothWindow, K: res.K}
	vres, err := tsexplain.Explain(d.Rel, query, vanilla)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nVanillaTSExplain: %v (speed-up %.1fx, variance %.3f vs %.3f)\n",
		vres.Timings.Total().Round(1e6),
		vres.Timings.Total().Seconds()/res.Timings.Total().Seconds(),
		res.TotalVariance, vres.TotalVariance)
}
