// Streaming: the real-time extension (Section 8). A covid-style series
// arrives day by day; the incremental explainer reuses cached per-segment
// explanations and only re-segments around the new points, so each update
// is much cheaper than re-explaining from scratch.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	tsexplain "repro"
)

// buildDays materializes the first `days` days of a three-wave epidemic:
// NY dominates days 0-39, TX days 40-79, CA afterwards.
func buildDays(days int) *tsexplain.Relation {
	b := tsexplain.NewBuilder("stream", "day", []string{"state"}, []string{"cases"})
	labels := make([]string, 120)
	for i := range labels {
		labels[i] = fmt.Sprintf("day%03d", i)
	}
	b.SetTimeOrder(labels[:days])
	for i := 0; i < days; i++ {
		ny, tx, ca := 50.0, 50.0, 50.0
		switch {
		case i < 40:
			ny += 30 * float64(i)
		case i < 80:
			ny += 30 * 39
			tx += 40 * float64(i-39)
		default:
			ny += 30 * 39
			tx += 40 * 40
			ca += 55 * float64(i-79)
		}
		for _, row := range []struct {
			state string
			v     float64
		}{{"NY", ny}, {"TX", tx}, {"CA", ca}} {
			if err := b.Append(labels[i], []string{row.state}, []float64{row.v}); err != nil {
				log.Fatal(err)
			}
		}
	}
	rel, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	return rel
}

func main() {
	query := tsexplain.Query{Measure: "cases", Agg: tsexplain.Sum}

	start := time.Now()
	inc, res, err := tsexplain.NewIncremental(buildDays(60), query, tsexplain.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 60: K=%d, cuts %v (initial explain %v)\n",
		res.K, res.Cuts(), time.Since(start).Round(time.Microsecond))

	for _, day := range []int{70, 85, 100, 120} {
		start = time.Now()
		res, err = inc.Update(buildDays(day))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %3d: K=%d, cuts %v (update %v)\n",
			day, res.K, res.Cuts(), time.Since(start).Round(time.Microsecond))
	}

	fmt.Println("\nfinal explanation:")
	for _, seg := range res.Segments {
		fmt.Printf("  %s ~ %s", seg.StartLabel, seg.EndLabel)
		if len(seg.Top) > 0 {
			fmt.Printf("  driven by %s (%s)", seg.Top[0].Predicates, seg.Top[0].Effect)
		}
		fmt.Println()
	}
}
