// Streaming: the real-time extension (Section 8). A covid-style series
// arrives day by day and flows through the true append path —
// Relation.AppendRows → Universe.Append → Incremental.AppendRows — so
// each update costs O(delta), not O(history): the engine extends every
// candidate's series inside its shared arena, registers slices that first
// appear in the delta (FL starts reporting only on day 90) at the tail,
// and re-segments just the open tail around the new points.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	tsexplain "repro"
	"repro/internal/datasets"
)

func main() {
	const start = 60
	d := datasets.Stream(start)
	query := tsexplain.Query{Measure: d.Measure, Agg: d.Agg, ExplainBy: d.ExplainBy}
	opts := tsexplain.Options{MaxOrder: d.MaxOrder}

	buildStart := time.Now()
	inc, res, err := tsexplain.NewIncremental(d.Rel, query, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day %3d: K=%d, cuts %v (initial explain %v)\n",
		start, res.K, res.Cuts(), time.Since(buildStart).Round(time.Microsecond))

	var total time.Duration
	for day := start; day < datasets.StreamDays; day++ {
		timeVals, dims, measures := datasets.StreamDelta(day)
		upStart := time.Now()
		res, err = inc.AppendRows(timeVals, dims, measures)
		if err != nil {
			log.Fatal(err)
		}
		took := time.Since(upStart)
		total += took
		if (day+1)%10 == 0 {
			fmt.Printf("day %3d: K=%d, cuts %v (append %v)\n",
				day+1, res.K, res.Cuts(), took.Round(time.Microsecond))
		}
	}
	fmt.Printf("\n%d single-day appends in %v (avg %v/update)\n",
		datasets.StreamDays-start, total.Round(time.Microsecond),
		(total / time.Duration(datasets.StreamDays-start)).Round(time.Microsecond))

	fmt.Println("\nfinal explanation:")
	for _, seg := range res.Segments {
		fmt.Printf("  %s ~ %s", seg.StartLabel, seg.EndLabel)
		if len(seg.Top) > 0 {
			fmt.Printf("  driven by %s (%s)", seg.Top[0].Predicates, seg.Top[0].Effect)
		}
		fmt.Println()
	}
}
