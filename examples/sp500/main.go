// SP500: hierarchical explain-by attributes (Figure 13, Table 4). The
// index series SUM(price·share)/divisor is explained by category →
// subcategory → stock; the engine finds the 2020 crash and rebound and
// attributes them to sectors, including the "financial does not bounce
// back" insight. It also demonstrates the two-relations-diff building
// block directly on the crash endpoints.
//
// Run with: go run ./examples/sp500
package main

import (
	"fmt"
	"log"

	tsexplain "repro"
	"repro/internal/datasets"
)

func main() {
	d := datasets.SP500()
	query := tsexplain.Query{
		Measure:   d.Measure,
		Agg:       d.Agg,
		ExplainBy: d.ExplainBy,
	}
	opts := tsexplain.DefaultOptions()
	opts.MaxOrder = d.MaxOrder

	eng, err := tsexplain.NewEngine(d.Rel, query, opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Explain()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("S&P 500 during 2020, explained by sector hierarchy (K=%d)\n", res.K)
	for _, seg := range res.Segments {
		move := res.Series[seg.End] - res.Series[seg.Start]
		dir := "up"
		if move < 0 {
			dir = "down"
		}
		fmt.Printf("\n%s ~ %s  index %s %.0f points\n", seg.StartLabel, seg.EndLabel, dir, move)
		for i, e := range seg.Top {
			fmt.Printf("  top-%d %-32s %s γ=%.3g\n", i+1, e.Predicates, e.Effect, e.Gamma)
		}
	}

	// Two-relations diff on explicit endpoints (Section 3.1): why did the
	// index change between the February peak and the March trough?
	peak, trough := indexOf(res.Labels, "2020-02-18"), indexOf(res.Labels, "2020-03-23")
	top, err := eng.TopExplanations(peak, trough)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTwo-relations diff %s -> %s (the crash):\n",
		res.Labels[peak], res.Labels[trough])
	for i, e := range top {
		fmt.Printf("  top-%d %-32s %s γ=%.3g\n", i+1, e.Predicates, e.Effect, e.Gamma)
	}
}

func indexOf(labels []string, want string) int {
	for i, l := range labels {
		if l >= want {
			return i
		}
	}
	return len(labels) - 1
}
