// Vaccination: time-varying attributes (Section 8, Figure 18). Weekly
// covid deaths are explained by age-group (static) and vaccination status
// (time-varying: the unvaccinated population shrinks as uptake grows).
// TSExplain surfaces the shift from "the unvaccinated drive deaths" to
// "people 50+ drive deaths, vaccinated or not".
//
// Run with: go run ./examples/vaccination
package main

import (
	"fmt"
	"log"

	tsexplain "repro"
	"repro/internal/datasets"
)

func main() {
	d := datasets.VaxDeaths()
	opts := tsexplain.DefaultOptions()
	opts.MaxOrder = d.MaxOrder

	res, err := tsexplain.Explain(d.Rel, tsexplain.Query{
		Measure:   d.Measure,
		Agg:       d.Agg,
		ExplainBy: d.ExplainBy,
	}, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Weekly covid deaths 2021 (weeks 14-52), explained by age-group and vaccination\n")
	fmt.Printf("K = %d periods\n", res.K)
	for _, seg := range res.Segments {
		move := res.Series[seg.End] - res.Series[seg.Start]
		fmt.Printf("\n%s ~ %s  (weekly deaths %+.0f)\n", seg.StartLabel, seg.EndLabel, move)
		for i, e := range seg.Top {
			fmt.Printf("  top-%d %-28s %s γ=%.0f\n", i+1, e.Predicates, e.Effect, e.Gamma)
		}
	}

	fmt.Println("\nReading: early segments are dominated by vaccinated=NO across all ages;")
	fmt.Println("later segments by age-group=50+, because younger people are broadly")
	fmt.Println("protected by then while protection wanes with age (Section 8).")
}
